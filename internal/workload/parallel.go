package workload

import (
	"fmt"

	"vsched/internal/guest"
	"vsched/internal/sim"
)

// SyncKind is the synchronisation structure of a parallel kernel.
type SyncKind int

const (
	// SyncNone: embarrassingly parallel (blackscholes, swaptions).
	SyncNone SyncKind = iota
	// SyncBarrier: iteration barrier, blocking wait (most Splash kernels).
	SyncBarrier
	// SyncSpinBarrier: user-level spinning barrier (streamcluster, volrend)
	// — the LHP-prone pattern the paper calls out in §5.6.
	SyncSpinBarrier
	// SyncLock: shared lock, critical section per iteration (canneal,
	// fluidanimate, radiosity).
	SyncLock
	// SyncSpinLock: user-level spinlock variant.
	SyncSpinLock
)

// ParallelSpec parameterises a data-parallel kernel.
type ParallelSpec struct {
	Name           string
	DefaultThreads int
	// IterWork is per-thread nominal CPU per iteration.
	IterWork sim.Duration
	// Imbalance is the relative spread of per-thread iteration work.
	Imbalance float64
	Sync      SyncKind
	// CritFrac is the fraction of IterWork inside the critical section
	// (lock kinds).
	CritFrac float64
	// Iterations per thread; 0 = run until stopped (throughput mode).
	Iterations int
	// FootprintMB is each thread's cache working set.
	FootprintMB float64
	// SerialFrac adds an Amdahl serial section to barrier kernels: after
	// each parallel round, thread 0 runs SerialFrac*IterWork*threads alone
	// while the others wait at a second barrier. During these phases the
	// system is underloaded — the situation §5.5 credits for ivh's gains
	// even at full thread counts.
	SerialFrac float64
}

// Parallel is a running parallel kernel.
type Parallel struct {
	env     Env
	spec    ParallelSpec
	threads int

	barrier *guest.Barrier
	mutex   *guest.Mutex

	ops     uint64 // completed thread-iterations
	tasks   []*guest.Task
	alive   int
	started bool
	stopped bool

	// FinishedAt is set when the last thread exits (fixed-size runs).
	FinishedAt sim.Time
}

// NewParallel builds a kernel in env; env.Threads overrides the default.
func NewParallel(env Env, spec ParallelSpec) *Parallel {
	th := spec.DefaultThreads
	if env.Threads > 0 {
		th = env.Threads
	}
	if th <= 0 && env.VM != nil {
		th = env.VM.NumVCPUs() // suite convention: one thread per vCPU
	}
	if th <= 0 {
		th = 1
	}
	p := &Parallel{env: env, spec: spec, threads: th}
	switch spec.Sync {
	case SyncBarrier:
		p.barrier = guest.NewBarrier(th)
	case SyncSpinBarrier:
		p.barrier = guest.NewBarrier(th)
		p.barrier.Spin = true
	case SyncLock, SyncSpinLock:
		p.mutex = &guest.Mutex{}
	}
	return p
}

// Name implements Instance.
func (p *Parallel) Name() string { return p.spec.Name }

// Ops implements Instance.
func (p *Parallel) Ops() uint64 { return p.ops }

// Done implements Instance.
func (p *Parallel) Done() bool { return p.started && p.alive == 0 }

// Threads returns the actual thread count.
func (p *Parallel) Threads() int { return p.threads }

// Tasks returns the kernel's spawned tasks (experiments inspect placement
// and queueing).
func (p *Parallel) Tasks() []*guest.Task { return p.tasks }

// Stop makes open-ended threads exit at their next iteration boundary.
func (p *Parallel) Stop() { p.stopped = true }

// Start implements Instance.
func (p *Parallel) Start() {
	if p.started {
		return
	}
	p.started = true
	p.alive = p.threads
	for i := 0; i < p.threads; i++ {
		opts := p.env.groupOpt()
		if p.spec.FootprintMB > 0 {
			opts = append(opts, guest.WithFootprint(p.spec.FootprintMB))
		}
		tk := p.env.VM.Spawn(fmt.Sprintf("%s/t%d", p.spec.Name, i),
			p.threadBehavior(i), opts...)
		p.tasks = append(p.tasks, tk)
		tk.OnExit = func(now sim.Time) {
			p.alive--
			if p.alive == 0 {
				p.FinishedAt = now
			}
		}
	}
}

func (p *Parallel) threadBehavior(idx int) guest.Behavior {
	eng := p.env.VM.Engine()
	iter := 0
	phase := 0
	s := p.spec
	serial := s.SerialFrac > 0 && p.threads > 1 &&
		(s.Sync == SyncBarrier || s.Sync == SyncSpinBarrier)
	owner := idx == 0
	var work float64
	return func(now sim.Time) guest.Segment {
		if phase == 0 {
			// New iteration.
			if (s.Iterations > 0 && iter >= s.Iterations) || p.stopped {
				return guest.Exit()
			}
			iter++
			jit := 1.0
			if s.Imbalance > 0 {
				jit = 1 + s.Imbalance*(2*eng.Rand().Float64()-1)
			}
			work = p.env.cycles(sim.Duration(float64(s.IterWork) * jit))
		}
		switch s.Sync {
		case SyncNone:
			p.ops++
			return guest.Compute(work)

		case SyncBarrier, SyncSpinBarrier:
			// Owner:      compute | barrier | serial-compute | barrier
			// Non-owner:  compute | barrier |                  barrier
			switch phase {
			case 0:
				phase = 1
				return guest.Compute(work)
			case 1:
				if serial {
					phase = 2
				} else {
					phase = 0
					p.ops++
				}
				return guest.BarrierWait(p.barrier)
			case 2:
				phase = 3
				if owner {
					// Amdahl serial section while everyone else waits at
					// the closing barrier.
					return guest.Compute(s.SerialFrac * work * float64(p.threads))
				}
				return guest.BarrierWait(p.barrier)
			default:
				phase = 0
				p.ops++
				if owner {
					return guest.BarrierWait(p.barrier)
				}
				// Non-owners have already passed the closing barrier (it
				// released when the owner arrived); begin the next
				// iteration immediately.
				if (s.Iterations > 0 && iter >= s.Iterations) || p.stopped {
					return guest.Exit()
				}
				iter++
				jit := 1.0
				if s.Imbalance > 0 {
					jit = 1 + s.Imbalance*(2*eng.Rand().Float64()-1)
				}
				work = p.env.cycles(sim.Duration(float64(s.IterWork) * jit))
				phase = 1
				return guest.Compute(work)
			}

		case SyncLock, SyncSpinLock:
			crit := work * s.CritFrac
			par := work - crit
			switch phase {
			case 0:
				phase = 1
				return guest.Compute(par)
			case 1:
				phase = 2
				if s.Sync == SyncSpinLock {
					return guest.AcquireSpin(p.mutex)
				}
				return guest.Acquire(p.mutex)
			case 2:
				phase = 3
				return guest.Compute(crit)
			default:
				phase = 0
				p.ops++
				return guest.Release(p.mutex)
			}
		}
		return guest.Exit()
	}
}

// PipelineSpec parameterises a producer→workers→consumer pipeline (dedup,
// ferret, x264, pbzip2).
type PipelineSpec struct {
	Name           string
	DefaultThreads int          // worker-stage parallelism
	ReadIO         sim.Duration // reader sleep per item (disk)
	ReadCPU        sim.Duration
	WorkCPU        sim.Duration // per-item worker compute
	WriteCPU       sim.Duration
	WriteIO        sim.Duration
	Items          int // 0 = endless
	QueueCap       int // backpressure bound on in-flight items
	// FootprintMB is each worker's cache working set.
	FootprintMB float64
}

// Pipeline is a running pipeline workload.
type Pipeline struct {
	env     Env
	spec    PipelineSpec
	threads int

	workSem  *guest.Semaphore // items ready for workers
	writeSem *guest.Semaphore // items ready for the writer
	capSem   *guest.Semaphore // backpressure tokens

	produced uint64
	ops      uint64 // items written
	started  bool
	stopped  bool

	FinishedAt sim.Time
}

// NewPipeline builds a pipeline workload.
func NewPipeline(env Env, spec PipelineSpec) *Pipeline {
	th := spec.DefaultThreads
	if env.Threads > 0 {
		th = env.Threads
	}
	if th <= 0 && env.VM != nil {
		// Worker-stage parallelism: leave room for the reader and writer.
		th = env.VM.NumVCPUs() - 2
	}
	if th <= 0 {
		th = 1
	}
	cap := spec.QueueCap
	if cap <= 0 {
		cap = 4 * th
	}
	return &Pipeline{
		env:      env,
		spec:     spec,
		threads:  th,
		workSem:  guest.NewSemaphore(0),
		writeSem: guest.NewSemaphore(0),
		capSem:   guest.NewSemaphore(cap),
	}
}

// Name implements Instance.
func (p *Pipeline) Name() string { return p.spec.Name }

// Ops implements Instance.
func (p *Pipeline) Ops() uint64 { return p.ops }

// Done implements Instance.
func (p *Pipeline) Done() bool {
	return p.spec.Items > 0 && p.ops >= uint64(p.spec.Items)
}

// Stop halts the reader; in-flight items drain.
func (p *Pipeline) Stop() { p.stopped = true }

// Start implements Instance.
func (p *Pipeline) Start() {
	if p.started {
		return
	}
	p.started = true
	vm := p.env.VM
	opts := p.env.groupOpt()

	// Reader.
	readPhase := 0
	vm.Spawn(p.spec.Name+"/read", func(now sim.Time) guest.Segment {
		switch readPhase {
		case 0:
			if p.stopped || (p.spec.Items > 0 && p.produced >= uint64(p.spec.Items)) {
				return guest.Exit()
			}
			readPhase = 1
			return guest.SemWait(p.capSem)
		case 1:
			readPhase = 2
			return guest.Sleep(p.spec.ReadIO)
		case 2:
			readPhase = 3
			return guest.Compute(p.env.cycles(p.spec.ReadCPU))
		default:
			readPhase = 0
			p.produced++
			return guest.SemPost(p.workSem)
		}
	}, opts...)

	// Workers.
	wopts := opts
	if p.spec.FootprintMB > 0 {
		wopts = append(append([]guest.TaskOpt(nil), opts...), guest.WithFootprint(p.spec.FootprintMB))
	}
	for i := 0; i < p.threads; i++ {
		phase := 0
		vm.Spawn(fmt.Sprintf("%s/wk%d", p.spec.Name, i), func(now sim.Time) guest.Segment {
			switch phase {
			case 0:
				phase = 1
				return guest.SemWait(p.workSem)
			case 1:
				phase = 2
				return guest.Compute(p.env.cycles(p.spec.WorkCPU))
			default:
				phase = 0
				return guest.SemPost(p.writeSem)
			}
		}, wopts...)
	}

	// Writer.
	wrPhase := 0
	vm.Spawn(p.spec.Name+"/write", func(now sim.Time) guest.Segment {
		switch wrPhase {
		case 0:
			wrPhase = 1
			return guest.SemWait(p.writeSem)
		case 1:
			wrPhase = 2
			return guest.Compute(p.env.cycles(p.spec.WriteCPU))
		case 2:
			wrPhase = 3
			if p.spec.WriteIO > 0 {
				return guest.Sleep(p.spec.WriteIO)
			}
			fallthrough
		default:
			wrPhase = 0
			p.ops++
			if p.Done() {
				p.FinishedAt = now
			}
			return guest.SemPost(p.capSem)
		}
	}, opts...)
}
