package workload

import "testing"

// The catalog's structural invariants, asserted rather than only stated in
// the spec-table comments.

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Catalog() {
		if s.Name == "" {
			t.Fatal("catalog entry with empty name")
		}
		if seen[s.Name] {
			t.Fatalf("duplicate benchmark name %q", s.Name)
		}
		seen[s.Name] = true
	}
	if len(seen) != len(Names()) {
		t.Fatalf("Catalog has %d names, Names() returns %d", len(seen), len(Names()))
	}
}

func TestParallelSpecInvariants(t *testing.T) {
	for _, ps := range parallelSpecs {
		if ps.IterWork <= 0 {
			t.Errorf("%s: non-positive IterWork %v", ps.Name, ps.IterWork)
		}
		if ps.CritFrac < 0 || ps.CritFrac >= 1 {
			t.Errorf("%s: CritFrac %v outside [0,1)", ps.Name, ps.CritFrac)
		}
		if ps.SerialFrac < 0 || ps.SerialFrac >= 1 {
			t.Errorf("%s: SerialFrac %v outside [0,1)", ps.Name, ps.SerialFrac)
		}
		if ps.Imbalance < 0 || ps.Imbalance >= 1 {
			t.Errorf("%s: Imbalance %v outside [0,1)", ps.Name, ps.Imbalance)
		}
		switch ps.Sync {
		case SyncLock, SyncSpinLock:
			if ps.CritFrac == 0 {
				t.Errorf("%s: lock-synchronised kernel without a critical section", ps.Name)
			}
			// The lock-saturation bound the spec table promises: at the
			// suite's maximum thread count the serialised critical sections
			// must still fit inside one iteration's parallel work, or the
			// lock (not the scheduler) becomes the bottleneck being measured.
			const maxThreads = 32
			if ps.CritFrac*maxThreads >= 1 {
				t.Errorf("%s: lock saturates at %d threads (crit*threads = %.2f >= 1)",
					ps.Name, maxThreads, ps.CritFrac*maxThreads)
			}
		default:
			if ps.CritFrac != 0 {
				t.Errorf("%s: CritFrac set on a lock-free kernel", ps.Name)
			}
		}
	}
}

func TestPipelineAndTailSpecInvariants(t *testing.T) {
	for _, pl := range pipelineSpecs {
		if pl.WorkCPU <= 0 {
			t.Errorf("%s: non-positive WorkCPU %v", pl.Name, pl.WorkCPU)
		}
	}
	for _, ts := range tailSpecs {
		if ts.svc <= 0 {
			t.Errorf("%s: non-positive service time %v", ts.name, ts.svc)
		}
	}
}
