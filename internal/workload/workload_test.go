package workload

import (
	"testing"

	"vsched/internal/guest"
	"vsched/internal/host"
	"vsched/internal/sim"
)

func testVM(t *testing.T, nvcpu int) (*sim.Engine, *guest.VM) {
	t.Helper()
	eng := sim.NewEngine(5)
	cfg := host.DefaultConfig()
	cfg.Sockets, cfg.CoresPerSocket, cfg.ThreadsPerCore = 1, nvcpu, 1
	cfg.TurboFactor, cfg.BaseSpeed = 1.0, 1.0
	h := host.New(eng, cfg)
	var threads []*host.Thread
	for i := 0; i < nvcpu; i++ {
		threads = append(threads, h.Thread(i))
	}
	vm := guest.NewVM(h, "vm", threads, guest.DefaultParams())
	vm.Start()
	return eng, vm
}

func env(vm *guest.VM, threads int) Env {
	return Env{VM: vm, Threads: threads, Nominal: 1.0}
}

func TestServerOpenLoopLatency(t *testing.T) {
	eng, vm := testVM(t, 4)
	srv := NewServer(env(vm, 0), ServerConfig{
		Name: "svc", Workers: 4,
		ServiceMean:  200 * sim.Microsecond,
		Interarrival: 2 * sim.Millisecond,
		LatencyMark:  true,
	})
	srv.Start()
	eng.RunFor(2 * sim.Second)
	if srv.Ops() < 700 || srv.Ops() > 1300 {
		t.Fatalf("ops=%d want ~1000", srv.Ops())
	}
	// Dedicated vCPUs: e2e ~= service, queue tiny.
	if p := srv.E2E().P95(); p > int64(600*sim.Microsecond) {
		t.Fatalf("p95=%dns too high for a dedicated VM", p)
	}
	if q := srv.Queue().P95(); q > int64(300*sim.Microsecond) {
		t.Fatalf("queue p95=%dns too high", q)
	}
	if s := srv.Service().Mean(); s < float64(100*sim.Microsecond) || s > float64(400*sim.Microsecond) {
		t.Fatalf("service mean=%v", s)
	}
}

func TestServerLatencyGrowsWithVCPULatency(t *testing.T) {
	run := func(burst sim.Duration) int64 {
		eng, vm := testVM(t, 2)
		h := vm.Host()
		for i := 0; i < 2; i++ {
			// The paper's latency knob: a CFS co-tenant plus host scheduler
			// granularities tuned to the target vCPU latency.
			h.Thread(i).SetGranularities(burst, 2*burst)
			host.NewStressor(h, "tenant", h.Thread(i), host.DefaultWeight)
		}
		// One worker, arrivals far apart: every request is an isolated
		// wakeup whose latency is dominated by the vCPU's wait.
		srv := NewServer(env(vm, 0), ServerConfig{
			Name: "svc", Workers: 1,
			ServiceMean:  100 * sim.Microsecond,
			Interarrival: 50 * sim.Millisecond,
			LatencyMark:  true,
		})
		srv.Start()
		eng.RunFor(20 * sim.Second)
		return srv.E2E().P95()
	}
	small, large := run(2*sim.Millisecond), run(16*sim.Millisecond)
	if large < 3*small {
		t.Fatalf("tail latency must grow with vCPU latency: 2ms->%d 16ms->%d", small, large)
	}
}

func TestServerClosedLoopSaturates(t *testing.T) {
	eng, vm := testVM(t, 4)
	srv := NewNginx(env(vm, 0))
	srv.Start()
	eng.RunFor(2 * sim.Second)
	// 4 vCPUs / 300us service: ceiling ~13.3k req/s; expect >60% of it.
	if srv.Ops() < 16000 {
		t.Fatalf("closed-loop throughput too low: %d ops in 2s", srv.Ops())
	}
}

func TestServerResetStats(t *testing.T) {
	eng, vm := testVM(t, 2)
	srv := NewTailbench(env(vm, 0), "silo", 100*sim.Microsecond)
	srv.Start()
	eng.RunFor(1 * sim.Second)
	srv.ResetStats()
	if srv.Ops() != 0 || srv.E2E().Count() != 0 {
		t.Fatal("reset failed")
	}
	eng.RunFor(1 * sim.Second)
	if srv.Ops() == 0 {
		t.Fatal("server stopped after reset")
	}
}

func TestParallelBarrierKernel(t *testing.T) {
	eng, vm := testVM(t, 4)
	p := NewParallel(env(vm, 4), ParallelSpec{
		Name: "bar", IterWork: 1 * sim.Millisecond, Imbalance: 0.2,
		Sync: SyncBarrier, Iterations: 100,
	})
	p.Start()
	eng.RunFor(5 * sim.Second)
	if !p.Done() {
		t.Fatal("kernel did not finish")
	}
	if p.Ops() != 400 {
		t.Fatalf("ops=%d want 400", p.Ops())
	}
	// 100 iterations of ~1ms on 4 dedicated vCPUs: ~100-160ms.
	if p.FinishedAt > sim.Time(400*sim.Millisecond) {
		t.Fatalf("finished at %v, too slow", p.FinishedAt)
	}
}

func TestParallelLockKernel(t *testing.T) {
	eng, vm := testVM(t, 4)
	p := NewParallel(env(vm, 4), ParallelSpec{
		Name: "lk", IterWork: 1 * sim.Millisecond, Sync: SyncLock,
		CritFrac: 0.2, Iterations: 50,
	})
	p.Start()
	eng.RunFor(5 * sim.Second)
	if !p.Done() {
		t.Fatal("lock kernel did not finish")
	}
	if p.Ops() != 200 {
		t.Fatalf("ops=%d", p.Ops())
	}
}

func TestParallelSpinBarrierKernel(t *testing.T) {
	eng, vm := testVM(t, 4)
	p := NewParallel(env(vm, 4), ParallelSpec{
		Name: "spin", IterWork: 500 * sim.Microsecond, Imbalance: 0.3,
		Sync: SyncSpinBarrier, Iterations: 50,
	})
	p.Start()
	eng.RunFor(5 * sim.Second)
	if !p.Done() {
		t.Fatal("spin-barrier kernel did not finish")
	}
}

func TestParallelStop(t *testing.T) {
	eng, vm := testVM(t, 2)
	p := NewParallel(env(vm, 2), ParallelSpec{
		Name: "endless", IterWork: 1 * sim.Millisecond, Sync: SyncNone,
	})
	p.Start()
	eng.RunFor(100 * sim.Millisecond)
	if p.Ops() == 0 {
		t.Fatal("no progress")
	}
	p.Stop()
	eng.RunFor(10 * sim.Millisecond)
	if !p.Done() {
		t.Fatal("threads did not exit after Stop")
	}
}

func TestPipelineProcessesItems(t *testing.T) {
	eng, vm := testVM(t, 4)
	p := NewPipeline(env(vm, 2), PipelineSpec{
		Name: "pipe", ReadIO: 100 * sim.Microsecond, ReadCPU: 50 * sim.Microsecond,
		WorkCPU: 500 * sim.Microsecond, WriteCPU: 50 * sim.Microsecond,
		Items: 200,
	})
	p.Start()
	eng.RunFor(5 * sim.Second)
	if !p.Done() {
		t.Fatalf("pipeline incomplete: %d/200", p.Ops())
	}
	if p.FinishedAt == 0 {
		t.Fatal("FinishedAt not stamped")
	}
}

func TestSysbenchThroughputScalesWithCapacity(t *testing.T) {
	run := func(duty bool) uint64 {
		eng, vm := testVM(t, 4)
		if duty {
			h := vm.Host()
			for i := 0; i < 4; i++ {
				host.NewPatternContender(h, "p", h.Thread(i), 5*sim.Millisecond, 5*sim.Millisecond, 0)
			}
		}
		s := NewSysbench(env(vm, 0), 4, 0)
		s.Start()
		eng.RunFor(2 * sim.Second)
		return s.Ops()
	}
	full, half := run(false), run(true)
	ratio := float64(full) / float64(half)
	if ratio < 1.7 || ratio > 2.4 {
		t.Fatalf("sysbench should track vCPU capacity: full=%d half=%d", full, half)
	}
}

func TestHackbenchCompletes(t *testing.T) {
	eng, vm := testVM(t, 4)
	hb := NewHackbench(env(vm, 0), 2, 2, 50)
	hb.Start()
	eng.RunFor(10 * sim.Second)
	if !hb.Done() {
		t.Fatalf("hackbench incomplete: ops=%d", hb.Ops())
	}
	// groups × senders × receivers × messages-per-pair.
	if hb.Ops() != 2*2*2*50 {
		t.Fatalf("messages received=%d want 400", hb.Ops())
	}
}

func TestFioMostlySleeps(t *testing.T) {
	eng, vm := testVM(t, 2)
	f := NewFio(env(vm, 0), 2, 0, 0)
	f.Start()
	eng.RunFor(1 * sim.Second)
	// ~1s / 69us per op per thread = ~14.5k/thread.
	if f.Ops() < 15000 || f.Ops() > 35000 {
		t.Fatalf("fio ops=%d", f.Ops())
	}
}

func TestMatmulPureCompute(t *testing.T) {
	eng, vm := testVM(t, 2)
	m := NewMatmul(env(vm, 0), 2, 0)
	m.Start()
	eng.RunFor(1 * sim.Second)
	// 2 threads × (1s / 5ms) = ~400 chunks.
	if m.Ops() < 350 || m.Ops() > 450 {
		t.Fatalf("matmul ops=%d", m.Ops())
	}
}

func TestCatalogCoverage(t *testing.T) {
	// Every workload named by the overall-evaluation figures must resolve.
	for _, n := range append(Fig18ThroughputNames(), Fig18LatencyNames()...) {
		if _, ok := ByName(n); !ok {
			t.Fatalf("catalog missing %q", n)
		}
	}
	if len(Names()) < 30 {
		t.Fatalf("catalog too small: %d", len(Names()))
	}
	if _, ok := ByName("no-such-benchmark"); ok {
		t.Fatal("ByName must fail for unknown names")
	}
}

func TestCatalogInstancesRun(t *testing.T) {
	// Smoke-run every catalogued benchmark briefly: it must make progress
	// and not panic.
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			eng, vm := testVM(t, 4)
			inst := spec.New(Env{VM: vm, Threads: 4, Nominal: 1.0})
			inst.Start()
			eng.RunFor(1 * sim.Second)
			if inst.Ops() == 0 {
				t.Fatalf("%s made no progress", spec.Name)
			}
			if spec.Kind == Latency {
				li, ok := inst.(LatencyInstance)
				if !ok {
					t.Fatalf("%s marked Latency but lacks histograms", spec.Name)
				}
				if li.E2E().Count() == 0 {
					t.Fatalf("%s recorded no latencies", spec.Name)
				}
			}
		})
	}
}

func TestServerStickyMode(t *testing.T) {
	eng, vm := testVM(t, 4)
	srv := NewServer(env(vm, 0), ServerConfig{
		Name: "sticky", Workers: 2, Connections: 4, Sticky: true,
		ServiceMean: 200 * sim.Microsecond,
	})
	srv.Start()
	eng.RunFor(2 * sim.Second)
	if srv.Ops() < 1000 {
		t.Fatalf("sticky server made little progress: %d", srv.Ops())
	}
	if srv.Name() != "sticky" || srv.Done() {
		t.Fatal("server accessors")
	}
	srv.Stop()
	eng.RunFor(100 * sim.Millisecond)
	after := srv.Ops()
	eng.RunFor(500 * sim.Millisecond)
	if srv.Ops() != after {
		t.Fatal("stopped server kept serving")
	}
}

func TestServerBestEffortMode(t *testing.T) {
	eng, vm := testVM(t, 2)
	// A best-effort background server plus a normal hog: the hog dominates.
	be := NewServer(env(vm, 0), ServerConfig{
		Name: "bg", Workers: 2, Connections: 4, BestEffort: true,
		ServiceMean: 500 * sim.Microsecond,
	})
	be.Start()
	hog := vm.Spawn("hog", func(sim.Time) guest.Segment { return guest.ComputeForever() },
		guest.StartOn(0))
	eng.RunFor(2 * sim.Second)
	if be.Ops() == 0 {
		t.Fatal("best-effort server should use leftover cycles")
	}
	if hog.TotalRun() < 1900*sim.Millisecond {
		t.Fatalf("hog starved by best-effort server: %v", hog.TotalRun())
	}
}

func TestInstanceAccessors(t *testing.T) {
	eng, vm := testVM(t, 4)
	e := env(vm, 0)
	hb := NewHackbench(e, 0, 0, 0) // all defaults
	sb := NewSysbench(e, 2, 0)
	f := NewFio(e, 2, 0, 0)
	m := NewMatmul(e, 2, 0)
	p := NewParallel(e, ParallelSpec{Name: "k", IterWork: sim.Millisecond, Sync: SyncNone})
	pl := NewPipeline(e, PipelineSpec{Name: "pl", WorkCPU: sim.Millisecond})
	for _, inst := range []Instance{hb, sb, f, m, p, pl} {
		if inst.Name() == "" {
			t.Fatal("name missing")
		}
		if inst.Done() {
			t.Fatal("fresh instance cannot be done")
		}
		inst.Start()
		inst.Start() // idempotent
	}
	eng.RunFor(300 * sim.Millisecond)
	if p.Threads() != 4 || len(p.Tasks()) != 4 {
		t.Fatalf("parallel should default to one thread per vCPU: %d", p.Threads())
	}
	if len(sb.Tasks()) != 2 {
		t.Fatal("sysbench tasks")
	}
	sb.Stop()
	f.Stop()
	m.Stop()
	pl.Stop()
	p.Stop()
	eng.RunFor(200 * sim.Millisecond)
	sOps, fOps, mOps := sb.Ops(), f.Ops(), m.Ops()
	eng.RunFor(500 * sim.Millisecond)
	if sb.Ops() != sOps || f.Ops() != fOps || m.Ops() != mOps {
		t.Fatal("stopped instances kept counting")
	}
}

func TestSerialPhaseSemantics(t *testing.T) {
	// With a serial fraction, exactly one thread computes during the serial
	// window while the rest wait — measurable as per-thread runtime skew
	// and an iteration time longer than the parallel part alone.
	eng, vm := testVM(t, 4)
	p := NewParallel(env(vm, 4), ParallelSpec{
		Name: "amdahl", IterWork: 1 * sim.Millisecond,
		Sync: SyncBarrier, SerialFrac: 0.25, Iterations: 50,
	})
	p.Start()
	eng.RunFor(10 * sim.Second)
	if !p.Done() {
		t.Fatal("kernel did not finish")
	}
	// Expected iteration wall time: 1ms parallel + 0.25*1ms*4 = 1ms serial.
	elapsed := float64(p.FinishedAt)
	perIter := elapsed / 50
	if perIter < float64(1800*sim.Microsecond) || perIter > float64(2600*sim.Microsecond) {
		t.Fatalf("iteration time %.2fms, want ~2ms (1ms parallel + 1ms serial)", perIter/1e6)
	}
	// The owner (thread 0) must have run roughly twice as long as others.
	tasks := p.Tasks()
	owner := float64(tasks[0].TotalRun())
	other := float64(tasks[1].TotalRun())
	if owner < other*1.5 {
		t.Fatalf("owner should carry the serial work: %.1fms vs %.1fms", owner/1e6, other/1e6)
	}
}

func TestSerialPhaseIgnoredForSingleThread(t *testing.T) {
	eng, vm := testVM(t, 2)
	p := NewParallel(env(vm, 1), ParallelSpec{
		Name: "solo", IterWork: 1 * sim.Millisecond,
		Sync: SyncBarrier, SerialFrac: 0.5, Iterations: 20,
	})
	p.Start()
	eng.RunFor(5 * sim.Second)
	if !p.Done() {
		t.Fatal("solo kernel did not finish")
	}
	// No serial overhead at 1 thread: ~20ms total.
	if p.FinishedAt > sim.Time(40*sim.Millisecond) {
		t.Fatalf("single-thread run should skip serial phases: %v", p.FinishedAt)
	}
}

func TestHeavyTailServiceDistribution(t *testing.T) {
	eng, vm := testVM(t, 4)
	srv := NewServer(env(vm, 0), ServerConfig{
		Name: "search", Workers: 4, ServiceMean: 1 * sim.Millisecond,
		Interarrival: 4 * sim.Millisecond, HeavyTail: true,
	})
	srv.Start()
	eng.RunFor(20 * sim.Second)
	// A bounded Pareto's p99/p50 spread far exceeds uniform jitter's.
	p50, p99 := srv.Service().P50(), srv.Service().P99()
	if p99 < 3*p50 {
		t.Fatalf("heavy tail missing: p50=%d p99=%d", p50, p99)
	}
	if p99 > int64(7*sim.Millisecond) {
		t.Fatalf("tail must stay bounded at 6x mean: p99=%d", p99)
	}
}

// TestServerStreamIsScheduleIndependent pins the common-random-numbers
// property: the request stream (arrival gaps and per-request service
// demands) comes from the server's private RNG, so components drawing from
// the engine's shared source — probers, contenders, cache jitter — cannot
// shift it. Comparing two scheduler configurations therefore compares
// scheduling, not tail-sampling noise.
func TestServerStreamIsScheduleIndependent(t *testing.T) {
	run := func(perturb bool) (uint64, int64) {
		eng, vm := testVM(t, 4)
		if perturb {
			// Burn shared-RNG draws the way a prober or contender would.
			for i := 0; i < 1000; i++ {
				eng.Rand().Int63()
			}
		}
		srv := NewServer(env(vm, 0), ServerConfig{
			Name: "search", Workers: 4, ServiceMean: 1 * sim.Millisecond,
			Interarrival: 5 * sim.Millisecond, HeavyTail: true,
		})
		srv.Start()
		eng.RunFor(20 * sim.Second)
		return srv.Ops(), srv.Service().P99()
	}
	ops0, svc0 := run(false)
	ops1, svc1 := run(true)
	if ops0 != ops1 || svc0 != svc1 {
		t.Fatalf("request stream moved with shared-RNG state: ops %d vs %d, service p99 %d vs %d",
			ops0, ops1, svc0, svc1)
	}
}
