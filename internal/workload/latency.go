package workload

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"vsched/internal/guest"
	"vsched/internal/metrics"
	"vsched/internal/sim"
)

// Server is a request/response workload: an open- or closed-loop client
// feeds requests to a worker pool; workers are small latency-sensitive tasks
// (Tailbench) or throughput-serving workers (Nginx). It measures queue,
// service and end-to-end time per request — the Table 3 breakdown.
type Server struct {
	env  Env
	name string

	// Workers and service.
	workers     int
	serviceMean sim.Duration
	serviceJit  float64 // relative variation
	// Open-loop: interarrival mean (exponential); 0 disables.
	interarrival sim.Duration
	// Closed-loop: number of always-pending connections; 0 disables.
	connections int
	// ThinkTime for closed-loop connections.
	think sim.Duration
	// MarkLatencySensitive marks the workers for bvs.
	markLS    bool
	footprint float64
	heavyTail bool
	// BestEffort spawns the workers SCHED_IDLE (a background server).
	bestEffort bool

	// rng is the server's private random stream: arrival gaps and service
	// demands must not depend on how other components (probers, contenders)
	// interleave draws on the engine's shared source, or comparisons between
	// configurations would measure tail-sampling noise instead of
	// scheduling. Seeded from the engine seed and the server name.
	rng *rand.Rand

	reqSem   *guest.Semaphore
	arrivals []request // FIFO of pending requests
	sticky   bool
	perSem   []*guest.Semaphore // per-worker queues (sticky mode)
	perArr   [][]request

	ops     uint64
	e2e     *metrics.Histogram
	queue   *metrics.Histogram
	service *metrics.Histogram

	stopped bool
	started bool
}

// ServerConfig parameterises a Server.
type ServerConfig struct {
	Name         string
	Workers      int
	ServiceMean  sim.Duration
	ServiceJit   float64
	Interarrival sim.Duration // open loop (exponential), 0 = closed loop
	Connections  int          // closed loop concurrency
	Think        sim.Duration
	LatencyMark  bool
	BestEffort   bool
	FootprintMB  float64 // per-worker cache working set
	// HeavyTail draws service times from a bounded Pareto (shape 1.6, cap
	// 6x mean) instead of uniform jitter — the tail profile of search and
	// speech workloads like xapian and sphinx.
	HeavyTail bool
	// Sticky binds each closed-loop connection to one worker (nginx-style
	// event loops): load does not rotate across the pool, so a few busy
	// connections keep a few specific workers — and their vCPUs — hot.
	Sticky bool
}

// request is one in-flight request: when the server-side network path
// stamped it and how much service it demands. Demand is drawn at injection
// time so the request stream is identical across scheduler configurations.
type request struct {
	at  sim.Time
	svc sim.Duration
}

// NewServer builds a server workload in env.
func NewServer(env Env, cfg ServerConfig) *Server {
	if cfg.Workers <= 0 {
		panic("workload: server needs workers")
	}
	h := fnv.New64a()
	h.Write([]byte(cfg.Name))
	return &Server{
		rng:          rand.New(rand.NewSource(env.VM.Engine().Seed() ^ int64(h.Sum64()))),
		env:          env,
		name:         cfg.Name,
		workers:      cfg.Workers,
		serviceMean:  cfg.ServiceMean,
		serviceJit:   cfg.ServiceJit,
		interarrival: cfg.Interarrival,
		connections:  cfg.Connections,
		think:        cfg.Think,
		markLS:       cfg.LatencyMark,
		bestEffort:   cfg.BestEffort,
		footprint:    cfg.FootprintMB,
		heavyTail:    cfg.HeavyTail,
		sticky:       cfg.Sticky,
		reqSem:       guest.NewSemaphore(0),
		e2e:          metrics.NewHistogram(),
		queue:        metrics.NewHistogram(),
		service:      metrics.NewHistogram(),
	}
}

// Name implements Instance.
func (s *Server) Name() string { return s.name }

// Ops implements Instance.
func (s *Server) Ops() uint64 { return s.ops }

// Done implements Instance (servers are open-ended).
func (s *Server) Done() bool { return false }

// E2E implements LatencyInstance.
func (s *Server) E2E() *metrics.Histogram { return s.e2e }

// Queue implements LatencyInstance.
func (s *Server) Queue() *metrics.Histogram { return s.queue }

// Service implements LatencyInstance.
func (s *Server) Service() *metrics.Histogram { return s.service }

// ResetStats clears histograms and counters (used after warmup).
func (s *Server) ResetStats() {
	s.ops = 0
	s.e2e.Reset()
	s.queue.Reset()
	s.service.Reset()
}

// Stop ends request generation; in-flight requests drain.
func (s *Server) Stop() { s.stopped = true }

// Start implements Instance.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	if s.sticky {
		s.perSem = make([]*guest.Semaphore, s.workers)
		s.perArr = make([][]request, s.workers)
		for i := range s.perSem {
			s.perSem[i] = guest.NewSemaphore(0)
		}
	}
	for i := 0; i < s.workers; i++ {
		opts := append(s.env.groupOpt(), guest.StartOn(i%s.env.VM.NumVCPUs()))
		if s.footprint > 0 {
			opts = append(opts, guest.WithFootprint(s.footprint))
		}
		if s.markLS {
			opts = append(opts, guest.WithLatencySensitive())
		}
		if s.bestEffort {
			opts = append(opts, guest.WithIdlePolicy())
			if s.env.BEGroup != nil {
				opts = append(opts, guest.WithGroup(s.env.BEGroup))
			}
		}
		s.env.VM.Spawn(fmt.Sprintf("%s/w%d", s.name, i), s.workerBehavior(i), opts...)
	}
	if s.interarrival > 0 {
		s.scheduleArrival()
	}
	for i := 0; i < s.connections; i++ {
		s.injectTo(i % s.workers)
	}
}

// inject delivers one request through the IRQ path. Interrupts spread
// across vCPUs per flow like a multi-queue NIC with RSS, so no single vCPU
// becomes the arrival hub. Like Tailbench, the request is timestamped when
// the server's network path enqueues it — queue time measures scheduling
// delay from that point, not the interrupt delivery itself.
func (s *Server) inject() { s.injectTo(0) }

// injectTo delivers one request; in sticky mode it lands on worker w's own
// queue, otherwise on the shared pool queue.
func (s *Server) injectTo(w int) {
	vm := s.env.VM
	irq := vm.VCPU(s.rng.Intn(vm.NumVCPUs()))
	svc := s.drawService()
	vm.DeliverIRQ(irq, func() {
		req := request{at: vm.Engine().Now(), svc: svc}
		if s.sticky {
			s.perArr[w] = append(s.perArr[w], req)
			vm.Post(s.perSem[w])
			return
		}
		s.arrivals = append(s.arrivals, req)
		vm.Post(s.reqSem)
	})
}

// drawService samples one request's service demand from the server's
// private stream.
func (s *Server) drawService() sim.Duration {
	if s.heavyTail {
		// Bounded Pareto with roughly the configured mean: shape 1.6 from
		// min mean/2.5, tail capped at 6x — the profile of search and
		// speech workloads like xapian and sphinx.
		return sim.Pareto(s.rng, 1.6, s.serviceMean*2/5, 6*s.serviceMean)
	}
	if s.serviceJit > 0 {
		jit := 1 + s.serviceJit*(2*s.rng.Float64()-1)
		return sim.Duration(float64(s.serviceMean) * jit)
	}
	return s.serviceMean
}

func (s *Server) scheduleArrival() {
	if s.stopped {
		return
	}
	eng := s.env.VM.Engine()
	gap := sim.Exp(s.rng, s.interarrival)
	eng.After(gap, func() {
		if s.stopped {
			return
		}
		s.inject()
		s.scheduleArrival()
	})
}

// workerBehavior is the Tailbench-style loop for worker w: take a request,
// execute its service time, account latency, repeat.
func (s *Server) workerBehavior(w int) guest.Behavior {
	eng := s.env.VM.Engine()
	var arrival, svcStart sim.Time
	state := 0 // 0 waiting, 1 service done
	sem := func() *guest.Semaphore {
		if s.sticky {
			return s.perSem[w]
		}
		return s.reqSem
	}
	queue := func() *[]request {
		if s.sticky {
			return &s.perArr[w]
		}
		return &s.arrivals
	}
	return func(now sim.Time) guest.Segment {
		switch state {
		case 1:
			// Service segment completed.
			s.ops++
			s.e2e.Observe(int64(now.Sub(arrival)))
			s.service.Observe(int64(now.Sub(svcStart)))
			state = 0
			if s.connections > 0 && !s.stopped {
				// Closed loop: the connection issues its next request.
				eng.After(s.think, func() { s.injectTo(w) })
			}
			return guest.SemWait(sem())
		default:
			q := queue()
			if len(*q) == 0 {
				// Initial entry (or spurious wake): park on the queue.
				state = 0
				return guest.SemWait(sem())
			}
			// Woken with a request available.
			req := (*q)[0]
			*q = (*q)[1:]
			arrival = req.at
			svcStart = now
			s.queue.Observe(int64(now.Sub(arrival)))
			state = 1
			return guest.Compute(s.env.cycles(req.svc))
		}
	}
}
