package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabledIsNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartBadPathFails(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Fatal("unwritable cpu path must error")
	}
	// A bad mem path surfaces at stop time, not start time.
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("unwritable mem path must error at stop")
	}
}
