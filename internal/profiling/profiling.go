// Package profiling wires the standard runtime/pprof profilers into
// command-line entry points. Commands expose -cpuprofile/-memprofile flags
// and call Start once after flag parsing; the returned stop function flushes
// everything before exit. Kept out of the simulation packages on purpose:
// profiling is host-process observability, never part of a scenario.
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start enables the requested profiles. An empty path disables that profile,
// so Start("", "") is a no-op that still returns a callable stop. The stop
// function ends CPU profiling and writes the heap profile (after a GC, so
// live-object accounting is current); call it exactly once, before exit.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			keep(cpuFile.Close())
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				keep(err)
			} else {
				runtime.GC()
				keep(pprof.WriteHeapProfile(f))
				keep(f.Close())
			}
		}
		return firstErr
	}, nil
}
