// Package heapengine preserves the original container/heap event queue that
// internal/sim shipped with before the timing-wheel engine replaced it. It is
// a reference implementation, kept for two jobs:
//
//   - the differential test suite runs it side by side with the wheel over
//     randomized schedule/cancel/run scripts and requires identical fire
//     order, clocks, and pending counts at every step;
//   - the simbench baselines and the schedule/fire/cancel benchmarks report
//     heap-vs-wheel throughput, so the speedup stays measured instead of
//     assumed.
//
// The implementation is a verbatim copy of the pre-wheel engine (binary heap
// ordered by (time, seq), eager per-event allocation, threshold-triggered
// compaction of cancelled events); only the package name and the shared
// Time/Duration types differ. Do not optimize it: its value is being the
// simple, obviously-correct oracle.
package heapengine

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync/atomic"

	"vsched/internal/sim"
)

// Event is a scheduled callback. Events are created through Engine.At or
// Engine.After and may be cancelled before they fire.
type Event struct {
	at       sim.Time
	seq      uint64 // insertion order, breaks ties deterministically
	fn       func()
	eng      *Engine
	canceled bool
	fired    bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (ev *Event) Cancel() {
	if ev == nil || ev.canceled || ev.fired {
		return
	}
	ev.canceled = true
	if ev.eng != nil {
		ev.eng.ncanceled++
		ev.eng.maybeCompact()
	}
}

// Active reports whether the event is still pending (not fired, not
// cancelled).
func (ev *Event) Active() bool { return ev != nil && !ev.canceled && !ev.fired }

// Time returns the virtual time at which the event is (or was) scheduled.
func (ev *Event) Time() sim.Time { return ev.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// compactThreshold is the minimum number of cancelled-but-undiscarded events
// before compaction is considered; below it the garbage is cheaper than the
// rebuild.
const compactThreshold = 64

// Engine is the original heap-based discrete-event simulator: a virtual
// clock plus an ordered queue of pending events. Not safe for concurrent use
// except Interrupt.
type Engine struct {
	now       sim.Time
	events    eventHeap
	seq       uint64
	rng       *rand.Rand
	seed      int64
	nfired    uint64
	ncanceled int // cancelled events still sitting in the heap
	stopped   atomic.Bool
}

// NewEngine returns an engine whose clock reads zero and whose random source
// is seeded with seed. The same seed always produces the same simulation.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Now returns the current virtual time.
func (e *Engine) Now() sim.Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.nfired }

// Pending returns the number of pending (active) events: cancelled events
// that have not yet been discarded from the queue are not counted.
func (e *Engine) Pending() int { return len(e.events) - e.ncanceled }

// Interrupt asks the engine to stop executing events; it is the only method
// safe to call from another goroutine.
func (e *Engine) Interrupt() { e.stopped.Store(true) }

// Interrupted reports whether Interrupt has been called.
func (e *Engine) Interrupted() bool { return e.stopped.Load() }

// maybeCompact rebuilds the heap without cancelled events once they are both
// numerous and the majority of the queue.
func (e *Engine) maybeCompact() {
	if e.ncanceled < compactThreshold || e.ncanceled*2 < len(e.events) {
		return
	}
	live := e.events[:0]
	for _, ev := range e.events {
		if !ev.canceled {
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = live
	e.ncanceled = 0
	heap.Init(&e.events)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics.
func (e *Engine) At(t sim.Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("heapengine: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, eng: e}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d sim.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("heapengine: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Step executes the next pending event, advancing the clock to its time.
// It returns false if the queue is empty or the engine was interrupted.
func (e *Engine) Step() bool {
	if e.stopped.Load() {
		return false
	}
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			e.ncanceled--
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.nfired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events in order until the clock would pass `until`, then sets
// the clock to exactly `until`. Events scheduled at `until` itself are
// executed.
func (e *Engine) Run(until sim.Time) {
	for len(e.events) > 0 && !e.stopped.Load() {
		// Peek.
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			e.ncanceled--
			continue
		}
		if next.at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunFor advances the simulation by d virtual time.
func (e *Engine) RunFor(d sim.Duration) { e.Run(e.now.Add(d)) }

// Drain runs until the event queue is empty or limit events have fired.
// It returns the number of events executed.
func (e *Engine) Drain(limit uint64) uint64 {
	var n uint64
	for n < limit && e.Step() {
		n++
	}
	return n
}
