package sim

import "testing"

// FuzzEngineSchedule inserts arbitrary event schedules (with cancellations)
// and checks ordering and conservation.
func FuzzEngineSchedule(f *testing.F) {
	f.Add([]byte{10, 3, 200, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		e := NewEngine(1)
		var fired []Time
		var cancel []*Event
		total := 0
		for i, b := range data {
			ev := e.At(Time(b)*16, func() { fired = append(fired, e.Now()) })
			if i%3 == 2 {
				cancel = append(cancel, ev)
			} else {
				total++
			}
		}
		for _, ev := range cancel {
			ev.Cancel()
		}
		e.Run(1 << 20)
		if len(fired) != total {
			t.Fatalf("fired %d, want %d", len(fired), total)
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				t.Fatal("out of order")
			}
		}
	})
}
