package sim

import "testing"

// FuzzEngineOps interprets the input as an interleaved sequence of
// At/After/Cancel/Run/Step operations and cross-checks the engine against a
// naive model: Pending must count exactly the active events, the clock must
// never go backwards, and every event must fire exactly once or be
// cancelled, never both.
func FuzzEngineOps(f *testing.F) {
	// Corpus: cancel-heavy, run-heavy, step-heavy, and nested interleavings.
	f.Add([]byte{0, 10, 1, 5, 2, 0, 3, 50})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 2, 0, 2, 1, 2, 2, 3, 255})
	f.Add([]byte{1, 3, 1, 3, 4, 4, 2, 0, 3, 9, 0, 7, 2, 1, 4})
	f.Add([]byte{0, 200, 2, 0, 2, 0, 0, 200, 2, 1, 3, 100, 3, 250})
	f.Add([]byte{1, 0, 1, 0, 4, 1, 0, 2, 2, 4, 4, 4, 3, 30, 0, 40, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		e := NewEngine(3)
		var all []Event
		var wasFired []bool
		newEvent := func(at Time) {
			idx := len(all)
			ev := e.At(at, func() {
				if wasFired[idx] {
					t.Fatal("event fired twice")
				}
				wasFired[idx] = true
			})
			all = append(all, ev)
			wasFired = append(wasFired, false)
		}
		last := e.Now()
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%5, data[i+1]
			switch op {
			case 0:
				newEvent(e.Now().Add(Duration(arg) * Millisecond))
			case 1:
				e.After(Duration(arg)*Millisecond, func() {})
				all = append(all, Event{}) // placeholder keeps arg-indexing stable
				wasFired = append(wasFired, false)
			case 2:
				if len(all) > 0 {
					all[int(arg)%len(all)].Cancel()
				}
			case 3:
				e.RunFor(Duration(arg) * Millisecond)
			case 4:
				e.Step()
			}
			if e.Now() < last {
				t.Fatalf("clock went backwards: %v -> %v", last, e.Now())
			}
			last = e.Now()
			// Pending must count active events exactly, never the
			// cancelled-but-uncollected garbage. Events from op 1 are
			// untracked, so Pending may exceed the tracked-active count but
			// never undershoot it.
			active := 0
			for _, ev := range all {
				if ev.Active() {
					active++
				}
			}
			if e.Pending() < active {
				t.Fatalf("Pending()=%d < active tracked events %d", e.Pending(), active)
			}
		}
		e.Run(1 << 40)
		for i, ev := range all {
			if ev.Active() {
				t.Fatalf("event %d still active after drain", i)
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("Pending()=%d after drain", e.Pending())
		}
	})
}

// FuzzEngineSchedule inserts arbitrary event schedules (with cancellations)
// and checks ordering and conservation.
func FuzzEngineSchedule(f *testing.F) {
	f.Add([]byte{10, 3, 200, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		e := NewEngine(1)
		var fired []Time
		var cancel []Event
		total := 0
		for i, b := range data {
			ev := e.At(Time(b)*16, func() { fired = append(fired, e.Now()) })
			if i%3 == 2 {
				cancel = append(cancel, ev)
			} else {
				total++
			}
		}
		for _, ev := range cancel {
			ev.Cancel()
		}
		e.Run(1 << 20)
		if len(fired) != total {
			t.Fatalf("fired %d, want %d", len(fired), total)
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				t.Fatal("out of order")
			}
		}
	})
}

// FuzzWheelCascade drives the timing-wheel-specific machinery: each byte
// pair selects a delay magnitude that lands in a specific wheel level (or
// the overflow heap), so cascades across levels, far-future promotion, and
// cancel-then-reuse of pooled nodes all get exercised. Checks: fire order
// non-decreasing, FIFO tie-break exact, conservation (every scheduled event
// fires exactly once or was cancelled), and full garbage collection.
func FuzzWheelCascade(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 4, 4, 5})
	f.Add([]byte{3, 0, 3, 0, 3, 0, 0, 0})                // far-future + now
	f.Add([]byte{2, 9, 1, 9, 0, 9, 3, 9, 2, 1, 1, 1})    // descending levels
	f.Add([]byte{4, 0, 4, 1, 4, 2, 4, 3, 0, 0, 1, 0})    // cancel-heavy
	f.Add([]byte{3, 7, 4, 0, 3, 7, 4, 1, 0, 0, 2, 0, 5}) // overflow churn
	f.Fuzz(func(t *testing.T, data []byte) {
		e := NewEngine(9)
		// Delay buckets, one per wheel region. Level 0 spans 256 ticks of
		// 4.096µs; level 1 spans ~268ms; level 2 spans ~68.7s; beyond is
		// overflow.
		buckets := []Duration{
			100 * Microsecond, // level 0
			10 * Millisecond,  // level 1
			2 * Second,        // level 2
			200 * Second,      // overflow
			50 * Microsecond,  // level 0, same-tick collisions likely
		}
		type rec struct {
			ev    Event
			at    Time
			seq   int
			fired bool
		}
		var recs []*rec
		seq := 0
		var firedOrder []*rec
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%6, int64(data[i+1])
			switch op {
			case 0, 1, 2, 3:
				d := buckets[op] + Duration(arg)*buckets[op]/8
				r := &rec{at: e.Now().Add(d), seq: seq}
				seq++
				r.ev = e.At(r.at, func() {
					r.fired = true
					firedOrder = append(firedOrder, r)
				})
				recs = append(recs, r)
			case 4:
				if len(recs) > 0 {
					recs[int(arg)%len(recs)].ev.Cancel()
				}
			case 5:
				// Partial run: forces limit-bounded advance and later
				// promotion of whatever stayed behind.
				e.RunFor(Duration(arg) * Millisecond)
			}
		}
		e.Run(maxTime)
		// Conservation: every record either fired or is inactive (cancelled).
		want := 0
		for _, r := range recs {
			if r.ev.Active() {
				t.Fatalf("event seq=%d still active after full drain", r.seq)
			}
			if r.fired {
				want++
			}
		}
		if len(firedOrder) != want {
			t.Fatalf("fired %d records, %d marked fired", len(firedOrder), want)
		}
		// Global fire order: (time, insertion seq) strictly increasing.
		for i := 1; i < len(firedOrder); i++ {
			a, b := firedOrder[i-1], firedOrder[i]
			if b.at < a.at || (b.at == a.at && b.seq < a.seq) {
				t.Fatalf("fire order violated: (%v,seq%d) then (%v,seq%d)",
					a.at, a.seq, b.at, b.seq)
			}
		}
		if e.Pending() != 0 || e.wheelCount != 0 || len(e.ready) != 0 || len(e.overflow) != 0 {
			t.Fatalf("engine not empty after drain: pending=%d wheel=%d ready=%d overflow=%d",
				e.Pending(), e.wheelCount, len(e.ready), len(e.overflow))
		}
	})
}

// FuzzDrainLimits runs Drain with arbitrary limits between schedule bursts:
// Drain must fire exactly min(limit, queued) events and leave the remainder
// intact and ordered.
func FuzzDrainLimits(f *testing.F) {
	f.Add([]byte{5, 3, 5, 100, 2, 1})
	f.Add([]byte{255, 0, 10, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		e := NewEngine(4)
		queued := 0
		fired := 0
		for i := 0; i+1 < len(data); i += 2 {
			n, limit := int(data[i]), uint64(data[i+1])
			for j := 0; j < n; j++ {
				e.After(Duration(j)*Millisecond, func() { fired++ })
				queued++
			}
			got := e.Drain(limit)
			wantFire := uint64(queued)
			if limit < wantFire {
				wantFire = limit
			}
			if got != wantFire {
				t.Fatalf("Drain(%d) with %d queued fired %d, want %d", limit, queued, got, wantFire)
			}
			queued -= int(got)
			if e.Pending() != queued {
				t.Fatalf("pending=%d want %d", e.Pending(), queued)
			}
		}
		e.Run(maxTime)
		if e.Pending() != 0 {
			t.Fatalf("pending=%d after drain", e.Pending())
		}
	})
}

// Regression corners distilled from the wheel's tricky paths: each is a
// deterministic scenario that at some point required a dedicated fix in the
// placement/advance logic.
func TestWheelCorners(t *testing.T) {
	t.Run("WrapCollision", func(t *testing.T) {
		// An event one full level-0 ring ahead of the cursor must NOT land in
		// the cursor's own slot (it would be skipped for a revolution).
		e := NewEngine(1)
		fired := false
		// Advance the cursor off zero first.
		e.At(1<<tickShift, func() {})
		e.Run(1 << tickShift)
		at := e.Now().Add(Duration(wheelSlots << tickShift)) // exactly one ring
		e.At(at, func() { fired = true })
		e.Run(at)
		if !fired {
			t.Fatal("event one ring ahead never fired (wrap collision)")
		}
	})
	t.Run("WrappedLevel0", func(t *testing.T) {
		// Events behind the cursor's ring position but ahead in time: the
		// window-crossing path must find them.
		e := NewEngine(1)
		var got []Time
		// Move cursor near the end of a level-0 window.
		warm := Time(250 << tickShift)
		e.At(warm, func() {})
		e.Run(warm)
		// Now schedule just past the window edge (ring index wraps to low).
		tgt := Time(260 << tickShift)
		e.At(tgt, func() { got = append(got, e.Now()) })
		e.Run(tgt)
		if len(got) != 1 || got[0] != tgt {
			t.Fatalf("wrapped level-0 event mishandled: %v", got)
		}
	})
	t.Run("OverflowRebaseThenSchedule", func(t *testing.T) {
		// After chasing a far-future overflow event, the clock and cursor are
		// far ahead; new near-future events must still fire correctly.
		e := NewEngine(1)
		var got []Time
		far := Time(300) * Time(Second)
		e.At(far, func() { got = append(got, e.Now()) })
		e.Run(far)
		e.After(Millisecond, func() { got = append(got, e.Now()) })
		e.RunFor(Millisecond)
		if len(got) != 2 || got[1] != far.Add(Millisecond) {
			t.Fatalf("post-rebase scheduling broken: %v", got)
		}
	})
	t.Run("LimitBoundedCursor", func(t *testing.T) {
		// Run(until) with only a far-future event pending must not drag the
		// cursor to that event; a subsequent near event still fires in order.
		e := NewEngine(1)
		var got []Time
		far := Time(400) * Time(Second)
		e.At(far, func() { got = append(got, e.Now()) })
		e.Run(Time(Second)) // stops well short
		near := e.Now().Add(Millisecond)
		e.At(near, func() { got = append(got, e.Now()) })
		e.Run(far)
		if len(got) != 2 || got[0] != near || got[1] != far {
			t.Fatalf("limit-bounded advance broken: %v", got)
		}
	})
	t.Run("CancelAllThenReuse", func(t *testing.T) {
		// Cancel an entire slot's worth, drain, and confirm the pool reuses
		// nodes rather than leaking or corrupting them.
		e := NewEngine(1)
		var evs []Event
		for i := 0; i < 64; i++ {
			evs = append(evs, e.After(Duration(i+1)*Millisecond, func() { t.Fatal("cancelled event fired") }))
		}
		for _, ev := range evs {
			ev.Cancel()
		}
		e.RunFor(100 * Millisecond)
		fired := 0
		for i := 0; i < 64; i++ {
			e.After(Duration(i+1)*Millisecond, func() { fired++ })
		}
		e.RunFor(100 * Millisecond)
		if fired != 64 {
			t.Fatalf("reused nodes misfired: %d/64", fired)
		}
		for _, ev := range evs {
			if ev.Active() {
				t.Fatal("stale handle active after reuse")
			}
		}
	})
}
