package sim

import "testing"

// FuzzEngineOps interprets the input as an interleaved sequence of
// At/After/Cancel/Run/Step operations and cross-checks the engine against a
// naive model: Pending must count exactly the active events, the clock must
// never go backwards, and every event must fire exactly once or be
// cancelled, never both.
func FuzzEngineOps(f *testing.F) {
	// Corpus: cancel-heavy, run-heavy, step-heavy, and nested interleavings.
	f.Add([]byte{0, 10, 1, 5, 2, 0, 3, 50})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 2, 0, 2, 1, 2, 2, 3, 255})
	f.Add([]byte{1, 3, 1, 3, 4, 4, 2, 0, 3, 9, 0, 7, 2, 1, 4})
	f.Add([]byte{0, 200, 2, 0, 2, 0, 0, 200, 2, 1, 3, 100, 3, 250})
	f.Add([]byte{1, 0, 1, 0, 4, 1, 0, 2, 2, 4, 4, 4, 3, 30, 0, 40, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		e := NewEngine(3)
		var all []*Event
		fired := make(map[*Event]bool)
		newEvent := func(at Time) {
			var ev *Event
			ev = e.At(at, func() {
				if fired[ev] {
					t.Fatal("event fired twice")
				}
				if ev.canceled {
					t.Fatal("cancelled event fired")
				}
				fired[ev] = true
			})
			all = append(all, ev)
		}
		last := e.Now()
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%5, data[i+1]
			switch op {
			case 0:
				newEvent(e.Now().Add(Duration(arg) * Millisecond))
			case 1:
				e.After(Duration(arg)*Millisecond, func() {})
				all = append(all, nil) // placeholder keeps arg-indexing stable
			case 2:
				if len(all) > 0 {
					if ev := all[int(arg)%len(all)]; ev != nil {
						ev.Cancel()
					}
				}
			case 3:
				e.RunFor(Duration(arg) * Millisecond)
			case 4:
				e.Step()
			}
			if e.Now() < last {
				t.Fatalf("clock went backwards: %v -> %v", last, e.Now())
			}
			last = e.Now()
			// Pending must count active events exactly, never the
			// cancelled-but-undiscarded garbage.
			active := 0
			for _, ev := range all {
				if ev.Active() {
					active++
				}
			}
			// Events from op 1 (placeholder nil) are never cancelled; count
			// the ones still pending via the queue total.
			if e.Pending() < active {
				t.Fatalf("Pending()=%d < active tracked events %d", e.Pending(), active)
			}
		}
		before := e.Fired()
		e.Run(1 << 40)
		stillActive := 0
		for _, ev := range all {
			if ev.Active() {
				stillActive++
			}
		}
		if stillActive != 0 {
			t.Fatalf("%d events still active after drain", stillActive)
		}
		if e.Pending() != 0 {
			t.Fatalf("Pending()=%d after drain", e.Pending())
		}
		_ = before
	})
}

// FuzzEngineSchedule inserts arbitrary event schedules (with cancellations)
// and checks ordering and conservation.
func FuzzEngineSchedule(f *testing.F) {
	f.Add([]byte{10, 3, 200, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		e := NewEngine(1)
		var fired []Time
		var cancel []*Event
		total := 0
		for i, b := range data {
			ev := e.At(Time(b)*16, func() { fired = append(fired, e.Now()) })
			if i%3 == 2 {
				cancel = append(cancel, ev)
			} else {
				total++
			}
		}
		for _, ev := range cancel {
			ev.Cancel()
		}
		e.Run(1 << 20)
		if len(fired) != total {
			t.Fatalf("fired %d, want %d", len(fired), total)
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				t.Fatal("out of order")
			}
		}
	})
}
