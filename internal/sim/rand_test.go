package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestVariateBounds checks, property-based, that every variate helper
// respects its contract for arbitrary parameters: Exp/Normal never negative,
// Uniform in [lo, hi), Jitter within base±f, Pareto within [min, max].
func TestVariateBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))

	if err := quick.Check(func(meanRaw int64) bool {
		mean := Duration(meanRaw % int64(10*Second))
		v := Exp(rng, mean)
		return v >= 0
	}, nil); err != nil {
		t.Error(err)
	}

	if err := quick.Check(func(a, b int64) bool {
		lo := Duration(abs64(a) % int64(Second))
		hi := Duration(abs64(b) % int64(Second))
		v := Uniform(rng, lo, hi)
		if hi <= lo {
			return v == lo
		}
		return v >= lo && v < hi
	}, nil); err != nil {
		t.Error(err)
	}

	if err := quick.Check(func(m, s int64) bool {
		v := Normal(rng, Duration(abs64(m)%int64(Second)), Duration(abs64(s)%int64(Second)))
		return v >= 0
	}, nil); err != nil {
		t.Error(err)
	}

	if err := quick.Check(func(b int64, fRaw uint8) bool {
		base := Duration(abs64(b) % int64(Second))
		f := float64(fRaw%100) / 100
		v := Jitter(rng, base, f)
		lo := float64(base) * (1 - f)
		hi := float64(base) * (1 + f)
		return float64(v) >= math.Floor(lo) && float64(v) <= math.Ceil(hi)
	}, nil); err != nil {
		t.Error(err)
	}

	if err := quick.Check(func(sRaw uint8, a, b int64) bool {
		shape := 0.5 + float64(sRaw%40)/10 // 0.5 .. 4.4
		min := Duration(1 + abs64(a)%int64(Second))
		max := min + Duration(abs64(b)%int64(Second))
		v := Pareto(rng, shape, min, max)
		return v >= min && v <= max
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestParetoMeanMatchesTheory: the bounded Pareto used for heavy-tailed
// services must have a sample mean near the truncated-distribution theory
// value, or calibrated service means drift.
func TestParetoMeanMatchesTheory(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const shape = 1.6
	min, max := Duration(400*Microsecond), Duration(6*Millisecond)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(Pareto(rng, shape, min, max))
	}
	got := sum / n
	// E[X] for a Pareto(a, m) capped at c: integrate the density up to c
	// plus c times the tail mass beyond it.
	a, m, c := shape, float64(min), float64(max)
	body := a * math.Pow(m, a) / (a - 1) * (math.Pow(m, 1-a) - math.Pow(c, 1-a))
	tail := c * math.Pow(m/c, a)
	want := body + tail
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("sample mean %.0f vs theoretical %.0f", got, want)
	}
}

func abs64(v int64) int64 {
	if v == math.MinInt64 {
		return math.MaxInt64
	}
	if v < 0 {
		return -v
	}
	return v
}
