package sim_test

// Benchmarks comparing the timing-wheel engine against the retained heap
// engine on the schedule/fire/cancel primitives, across backlog sizes from
// 1e3 to 1e6 pending events. Run with:
//
//	go test ./internal/sim/ -bench . -benchmem
//
// plus an allocation gate (TestScheduleFireAllocBudget) that runs as a
// normal tier-1 test: the wheel's steady-state schedule→fire path must not
// allocate, or the pooling regressed.

import (
	"fmt"
	"math/rand"
	"testing"

	"vsched/internal/sim"
	"vsched/internal/sim/heapengine"
)

// engineUnderTest abstracts the two engines for the shared benchmark bodies.
type engineUnderTest interface {
	AfterFn(d sim.Duration, fn func()) func() // returns a cancel thunk
	StepOnce() bool
	RunUntil(t sim.Time)
	CurNow() sim.Time
}

type wheelAdapter struct{ e *sim.Engine }

func (a wheelAdapter) AfterFn(d sim.Duration, fn func()) func() {
	ev := a.e.After(d, fn)
	return ev.Cancel
}
func (a wheelAdapter) StepOnce() bool      { return a.e.Step() }
func (a wheelAdapter) RunUntil(t sim.Time) { a.e.Run(t) }
func (a wheelAdapter) CurNow() sim.Time    { return a.e.Now() }

type heapAdapter struct{ e *heapengine.Engine }

func (a heapAdapter) AfterFn(d sim.Duration, fn func()) func() {
	ev := a.e.After(d, fn)
	return ev.Cancel
}
func (a heapAdapter) StepOnce() bool      { return a.e.Step() }
func (a heapAdapter) RunUntil(t sim.Time) { a.e.Run(t) }
func (a heapAdapter) CurNow() sim.Time    { return a.e.Now() }

func engines() map[string]func() engineUnderTest {
	return map[string]func() engineUnderTest{
		"wheel": func() engineUnderTest { return wheelAdapter{sim.NewEngine(1)} },
		"heap":  func() engineUnderTest { return heapAdapter{heapengine.NewEngine(1)} },
	}
}

var pendingSizes = []int{1_000, 10_000, 100_000, 1_000_000}

// benchDelays pre-generates a deterministic delay sequence biased toward the
// near future (the simulator's real workload: ticks, slices, probes), with a
// far-future tail.
func benchDelays(n int) []sim.Duration {
	rng := rand.New(rand.NewSource(99))
	out := make([]sim.Duration, n)
	for i := range out {
		if rng.Intn(50) == 0 {
			out[i] = sim.Duration(rng.Int63n(int64(100 * sim.Second)))
		} else {
			out[i] = sim.Duration(rng.Int63n(int64(10 * sim.Millisecond)))
		}
	}
	return out
}

// BenchmarkScheduleFire: hold `pending` events in the queue, then repeatedly
// fire the earliest and schedule a replacement — the steady-state mix every
// simulation scenario produces.
func BenchmarkScheduleFire(b *testing.B) {
	for name, mk := range engines() {
		for _, pending := range pendingSizes {
			b.Run(fmt.Sprintf("%s/pending=%d", name, pending), func(b *testing.B) {
				e := mk()
				delays := benchDelays(pending)
				for _, d := range delays {
					e.AfterFn(d, func() {})
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.StepOnce()
					e.AfterFn(delays[i%pending], func() {})
				}
			})
		}
	}
}

// BenchmarkSchedule: pure insertion cost at a given backlog.
func BenchmarkSchedule(b *testing.B) {
	for name, mk := range engines() {
		for _, pending := range pendingSizes {
			b.Run(fmt.Sprintf("%s/pending=%d", name, pending), func(b *testing.B) {
				e := mk()
				delays := benchDelays(pending)
				for _, d := range delays {
					e.AfterFn(d, func() {})
				}
				cancels := make([]func(), 0, b.N)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cancels = append(cancels, e.AfterFn(delays[i%pending], func() {}))
				}
				// Cleanup outside the timer.
				b.StopTimer()
				for _, c := range cancels {
					c()
				}
			})
		}
	}
}

// BenchmarkCancel: schedule-then-cancel churn at a given backlog; lazy
// cancellation makes this O(1) for the wheel, while the heap engine pays
// for compaction sweeps.
func BenchmarkCancel(b *testing.B) {
	for name, mk := range engines() {
		for _, pending := range pendingSizes {
			b.Run(fmt.Sprintf("%s/pending=%d", name, pending), func(b *testing.B) {
				e := mk()
				delays := benchDelays(pending)
				for _, d := range delays {
					e.AfterFn(d, func() {})
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c := e.AfterFn(delays[i%pending], func() {})
					c()
				}
			})
		}
	}
}

// scheduleFireAllocBudget is the pinned allocation budget for one
// schedule→fire round trip on the wheel in steady state (node pool warm).
// The engine's design target is zero: nodes are pooled, slots reuse their
// backing arrays, and the ready heap reuses its slice. If this test fails,
// the pool regressed — fix the engine, don't raise the budget.
const scheduleFireAllocBudget = 0

func TestScheduleFireAllocBudget(t *testing.T) {
	e := sim.NewEngine(1)
	delays := benchDelays(10_000)
	for _, d := range delays {
		e.After(d, func() {})
	}
	// Warm up: cycle every node through fire→reschedule once so the pool and
	// slot arrays reach steady state.
	fn := func() {}
	for i := 0; i < 20_000; i++ {
		e.Step()
		e.After(delays[i%len(delays)], fn)
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		e.Step()
		e.After(delays[i%len(delays)], fn)
		i++
	})
	if avg > scheduleFireAllocBudget {
		t.Fatalf("schedule→fire path allocates %.2f allocs/op, budget %d: node pooling regressed",
			avg, scheduleFireAllocBudget)
	}
}
