// Package sim provides the discrete-event simulation engine that all other
// packages are built on: a virtual clock, an ordered event queue with stable
// (deterministic) tie-breaking, cancellable events, and a seeded random
// number source so that every scenario is exactly reproducible.
//
// All simulated components share a single Engine. Components never sleep or
// use wall time; they schedule callbacks at absolute or relative virtual
// times and the engine executes them in order.
package sim

import "fmt"

// Time is an absolute virtual timestamp, in nanoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring package time but as sim durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

func (d Duration) String() string { return fmt.Sprintf("%.3fms", d.Milliseconds()) }

// DurationOfSeconds converts seconds to a Duration.
func DurationOfSeconds(s float64) Duration { return Duration(s * float64(Second)) }
