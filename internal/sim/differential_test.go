package sim_test

// Differential suite: the timing-wheel engine versus the original heap
// engine (kept verbatim in internal/sim/heapengine). Both engines are driven
// through identical randomized scripts of schedule/cancel/run/step/interrupt
// operations, and after every single operation the observable state — fire
// order, Now(), Fired(), Pending() — must match exactly. The FIFO tie-break
// for same-timestamp events is part of the contract: the byte-identity gates
// on experiment artifacts depend on it.

import (
	"fmt"
	"math/rand"
	"testing"

	"vsched/internal/sim"
	"vsched/internal/sim/heapengine"
)

// pair drives the wheel and the heap oracle in lockstep.
type pair struct {
	t      *testing.T
	wheel  *sim.Engine
	oracle *heapengine.Engine

	// fire logs, appended by event callbacks; tag identifies the event.
	wheelLog  []string
	oracleLog []string

	wheelEvs  []sim.Event
	oracleEvs []*heapengine.Event
}

func newPair(t *testing.T, seed int64) *pair {
	return &pair{t: t, wheel: sim.NewEngine(seed), oracle: heapengine.NewEngine(seed)}
}

// schedule registers the same event on both engines. Nested scheduling from
// inside callbacks is exercised via the nested flag.
func (p *pair) schedule(at sim.Time, tag string, nested bool) {
	p.wheelEvs = append(p.wheelEvs, p.wheel.At(at, func() {
		p.wheelLog = append(p.wheelLog, fmt.Sprintf("%s@%v", tag, p.wheel.Now()))
		if nested {
			p.wheel.After(sim.Millisecond, func() {
				p.wheelLog = append(p.wheelLog, fmt.Sprintf("%s.n@%v", tag, p.wheel.Now()))
			})
		}
	}))
	p.oracleEvs = append(p.oracleEvs, p.oracle.At(at, func() {
		p.oracleLog = append(p.oracleLog, fmt.Sprintf("%s@%v", tag, p.oracle.Now()))
		if nested {
			p.oracle.After(sim.Millisecond, func() {
				p.oracleLog = append(p.oracleLog, fmt.Sprintf("%s.n@%v", tag, p.oracle.Now()))
			})
		}
	}))
}

func (p *pair) cancel(i int) {
	if len(p.wheelEvs) == 0 {
		return
	}
	i %= len(p.wheelEvs)
	p.wheelEvs[i].Cancel()
	p.oracleEvs[i].Cancel()
}

// check asserts every observable matches after an operation.
func (p *pair) check(op string) {
	p.t.Helper()
	if p.wheel.Now() != p.oracle.Now() {
		p.t.Fatalf("%s: Now() diverged: wheel=%v oracle=%v", op, p.wheel.Now(), p.oracle.Now())
	}
	if p.wheel.Fired() != p.oracle.Fired() {
		p.t.Fatalf("%s: Fired() diverged: wheel=%d oracle=%d", op, p.wheel.Fired(), p.oracle.Fired())
	}
	if p.wheel.Pending() != p.oracle.Pending() {
		p.t.Fatalf("%s: Pending() diverged: wheel=%d oracle=%d", op, p.wheel.Pending(), p.oracle.Pending())
	}
	if len(p.wheelLog) != len(p.oracleLog) {
		p.t.Fatalf("%s: fire counts diverged: wheel=%d oracle=%d", op, len(p.wheelLog), len(p.oracleLog))
	}
	for i := range p.wheelLog {
		if p.wheelLog[i] != p.oracleLog[i] {
			p.t.Fatalf("%s: fire order diverged at %d: wheel=%q oracle=%q",
				op, i, p.wheelLog[i], p.oracleLog[i])
		}
	}
	for i := range p.wheelEvs {
		if p.wheelEvs[i].Active() != p.oracleEvs[i].Active() {
			p.t.Fatalf("%s: Active() diverged for event %d: wheel=%v oracle=%v",
				op, i, p.wheelEvs[i].Active(), p.oracleEvs[i].Active())
		}
	}
}

// runScript executes a randomized operation script on both engines, checking
// every observable after every operation. Delay magnitudes are drawn across
// all wheel regions (level 0 through overflow) and include zero and
// same-timestamp duplicates so the FIFO tie-break is continuously tested.
func runScript(t *testing.T, seed int64, ops int) {
	p := newPair(t, seed)
	rng := rand.New(rand.NewSource(seed))
	// Delay palette spanning every wheel region plus ties.
	delay := func() sim.Duration {
		switch rng.Intn(6) {
		case 0:
			return 0 // same-instant: exercises the ready heap and FIFO ties
		case 1:
			return sim.Duration(rng.Int63n(int64(sim.Millisecond))) // level 0
		case 2:
			return sim.Duration(rng.Int63n(int64(200 * sim.Millisecond))) // level 1
		case 3:
			return sim.Duration(rng.Int63n(int64(60 * sim.Second))) // level 2
		case 4:
			return 60*sim.Second + sim.Duration(rng.Int63n(int64(600*sim.Second))) // overflow
		default:
			return sim.Duration(rng.Int63n(int64(5 * sim.Millisecond)))
		}
	}
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // schedule (most common)
			at := p.wheel.Now().Add(delay())
			p.schedule(at, fmt.Sprintf("e%d", i), rng.Intn(8) == 0)
			p.check("schedule")
		case 4, 5: // cancel a random earlier event (may be stale/fired)
			p.cancel(rng.Intn(1 << 16))
			p.check("cancel")
		case 6, 7: // bounded run
			d := delay()
			p.wheel.RunFor(d)
			p.oracle.RunFor(d)
			p.check("runfor")
		case 8: // single step
			ws := p.wheel.Step()
			os := p.oracle.Step()
			if ws != os {
				t.Fatalf("Step() result diverged: wheel=%v oracle=%v", ws, os)
			}
			p.check("step")
		case 9: // drain a few
			n := uint64(rng.Intn(5))
			wd := p.wheel.Drain(n)
			od := p.oracle.Drain(n)
			if wd != od {
				t.Fatalf("Drain(%d) diverged: wheel=%d oracle=%d", n, wd, od)
			}
			p.check("drain")
		}
	}
	// Final full drain: everything left must fire in the same order.
	p.wheel.Run(sim.Time(1) << 62)
	p.oracle.Run(sim.Time(1) << 62)
	p.check("final drain")
}

func TestDifferentialRandomScripts(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runScript(t, seed, 400)
		})
	}
}

func TestDifferentialLongScript(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential script skipped in -short mode")
	}
	runScript(t, 424242, 5000)
}

// TestDifferentialInterrupt checks that Interrupt freezes both engines at
// the same point.
func TestDifferentialInterrupt(t *testing.T) {
	p := newPair(t, 7)
	for i := 0; i < 50; i++ {
		p.schedule(sim.Time(i)*sim.Time(sim.Millisecond), fmt.Sprintf("e%d", i), false)
	}
	// Interrupt both from inside event 20.
	p.wheel.At(sim.Time(20)*sim.Time(sim.Millisecond)+1, func() { p.wheel.Interrupt() })
	p.oracle.At(sim.Time(20)*sim.Time(sim.Millisecond)+1, func() { p.oracle.Interrupt() })
	p.wheel.Run(sim.Time(sim.Second))
	p.oracle.Run(sim.Time(sim.Second))
	p.check("interrupt")
	if !p.wheel.Interrupted() || !p.oracle.Interrupted() {
		t.Fatal("both engines must report interrupted")
	}
}

// TestDifferentialFIFOTieBreakExact schedules many events at identical
// timestamps, interleaved with cancellations, and requires the surviving
// events to fire in exact insertion order on both engines.
func TestDifferentialFIFOTieBreakExact(t *testing.T) {
	p := newPair(t, 11)
	at := sim.Time(5 * sim.Millisecond)
	for i := 0; i < 100; i++ {
		p.schedule(at, fmt.Sprintf("t%03d", i), false)
	}
	for i := 0; i < 100; i += 3 {
		p.cancel(i)
	}
	p.wheel.Run(at)
	p.oracle.Run(at)
	p.check("fifo ties")
	// Sanity: the log itself must be in insertion order.
	for i := 1; i < len(p.wheelLog); i++ {
		if p.wheelLog[i] <= p.wheelLog[i-1] {
			t.Fatalf("tie-break out of insertion order: %q then %q", p.wheelLog[i-1], p.wheelLog[i])
		}
	}
}

// FuzzDifferential lets the fuzzer construct operation scripts directly:
// every byte pair is one operation applied to both engines, with full
// observable comparison after each.
func FuzzDifferential(f *testing.F) {
	f.Add([]byte{0, 10, 0, 10, 2, 0, 3, 50})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 3, 0, 4, 0})
	f.Add([]byte{1, 200, 1, 200, 2, 1, 3, 255, 0, 5, 4, 2})
	f.Add([]byte{0, 255, 1, 255, 3, 255, 3, 255, 3, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := newPair(t, 3)
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%5, data[i+1]
			switch op {
			case 0: // near schedule
				at := p.wheel.Now().Add(sim.Duration(arg) * sim.Millisecond)
				p.schedule(at, fmt.Sprintf("a%d", i), false)
			case 1: // far schedule (level 2 / overflow territory)
				at := p.wheel.Now().Add(sim.Duration(arg) * sim.Second)
				p.schedule(at, fmt.Sprintf("b%d", i), arg%16 == 0)
			case 2:
				p.cancel(int(arg))
			case 3:
				p.wheel.RunFor(sim.Duration(arg) * sim.Millisecond)
				p.oracle.RunFor(sim.Duration(arg) * sim.Millisecond)
			case 4:
				ws, os := p.wheel.Step(), p.oracle.Step()
				if ws != os {
					t.Fatalf("Step() diverged: wheel=%v oracle=%v", ws, os)
				}
			}
			p.check(fmt.Sprintf("op%d", i))
		}
		p.wheel.Run(sim.Time(1) << 62)
		p.oracle.Run(sim.Time(1) << 62)
		p.check("fuzz final drain")
	})
}
