package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync/atomic"
)

// The event queue is a hierarchical timing wheel: wheelLevels rings of
// wheelSlots slots each, where a level-l slot spans 2^(wheelBits*l) ticks of
// 2^tickShift nanoseconds. Near-future events — the CFS ticks, time slices,
// and probe heartbeats that dominate every scenario — land in level 0 and
// are scheduled and fired in O(1) amortized; farther events land in a
// coarser ring and cascade toward level 0 as the cursor approaches them.
// Anything beyond the wheel's horizon (2^(wheelBits*wheelLevels) ticks,
// about 68 simulated seconds) waits in a conventional binary heap and is
// promoted into the wheel when it comes into range.
//
// Slots keep events in raw insertion order. When the cursor reaches a slot,
// its contents are dumped into the "ready" heap, a small binary heap ordered
// by (time, seq) that restores the exact global fire order — including the
// FIFO tie-break for same-timestamp events — that the original heap engine
// produced. The ready heap stays small (one slot's worth of events plus any
// same-tick arrivals), so its log factor is over a handful of entries, not
// the whole backlog.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits // 256 slots per ring
	wheelMask   = wheelSlots - 1
	wheelLevels = 3
	tickShift   = 12 // 4.096µs per tick: a 1ms CFS tick is ~244 ticks, level 0
)

// maxTime is the limit that never binds; Step and Drain run against it.
const maxTime = Time(1<<63 - 1)

// node is the pooled representation of a scheduled event. Nodes are owned by
// the engine: after an event fires or its cancellation is collected, the
// node's generation is bumped and it returns to the free list for reuse, so
// the steady-state schedule→fire path allocates nothing. Handles (Event)
// carry the generation they were issued with; a stale handle — one whose
// node has been recycled — compares unequal and becomes inert rather than
// touching the event that now occupies the node.
type node struct {
	at       Time
	seq      uint64 // insertion order, breaks ties deterministically
	fn       func()
	eng      *Engine
	gen      uint32
	canceled bool
}

// Event is a cancellable handle to a scheduled callback, issued by Engine.At
// and Engine.After. It is a small value, not a pointer: copies are fine, and
// the zero Event is valid and inert (not Active, Cancel is a no-op) — it
// replaces the nil *Event of the old heap engine.
type Event struct {
	n   *node
	at  Time
	gen uint32
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event — or the zero Event — is a no-op. Cancellation is
// lazy: the node stays parked in its wheel slot and is collected when the
// cursor sweeps past, so Cancel never restructures the queue.
func (ev Event) Cancel() {
	n := ev.n
	if n == nil || n.gen != ev.gen || n.canceled {
		return
	}
	n.canceled = true
	n.eng.live--
}

// Active reports whether the event is still pending (not fired, not
// cancelled).
func (ev Event) Active() bool {
	n := ev.n
	return n != nil && n.gen == ev.gen && !n.canceled
}

// Time returns the virtual time at which the event is (or was) scheduled.
func (ev Event) Time() Time { return ev.at }

// nodeLess is the global fire order: time, then insertion sequence.
func nodeLess(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// nodeHeap is a hand-rolled binary min-heap of nodes. container/heap would
// box every push and pop through interface{} method calls; this sits on the
// hot path, so the sift loops are inlined here.
type nodeHeap []*node

func (h *nodeHeap) push(n *node) {
	q := append(*h, n)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !nodeLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

func (h *nodeHeap) pop() *node {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = nil
	q = q[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= len(q) {
			break
		}
		if r := c + 1; r < len(q) && nodeLess(q[r], q[c]) {
			c = r
		}
		if !nodeLess(q[c], q[i]) {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	*h = q
	return top
}

// Engine is a discrete-event simulator: a virtual clock plus an ordered
// queue of pending events. It is not safe for concurrent use; the entire
// simulation runs on one goroutine, which is what makes it deterministic.
// The single exception is Interrupt, which may be called from another
// goroutine to stop a runaway simulation.
type Engine struct {
	now  Time
	cur  int64 // wheel cursor, in ticks; every slot strictly before it is empty
	seq  uint64
	rng  *rand.Rand
	seed int64

	nfired uint64
	live   int // scheduled and neither fired nor cancelled

	wheelCount int              // nodes resident in wheel slots, cancelled included
	levelCount [wheelLevels]int // ditto, per level — lets the cursor skip dead rings
	slots      [wheelLevels][wheelSlots][]*node
	bitmap     [wheelLevels][wheelSlots / 64]uint64 // occupied-slot index per ring

	ready    nodeHeap // events at ticks the cursor has reached, in fire order
	overflow nodeHeap // events beyond the wheel horizon
	free     []*node  // recycled nodes

	stopped atomic.Bool
}

// NewEngine returns an engine whose clock reads zero and whose random source
// is seeded with seed. The same seed always produces the same simulation.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed the engine was created with. Components that need a
// private random stream — so their draws do not depend on how other
// components interleave with the shared source — derive one from this.
func (e *Engine) Seed() int64 { return e.seed }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired returns the total number of events executed so far. Useful for
// performance reporting in benchmarks.
func (e *Engine) Fired() uint64 { return e.nfired }

// Pending returns the number of pending (active) events: cancelled events
// that have not yet been collected from the wheel are not counted.
func (e *Engine) Pending() int { return e.live }

// WheelStats is a point-in-time census of the event queue, for
// self-observability: where pending events sit (wheel levels, overflow heap,
// ready heap), how many slots are occupied, and how deep the node pool runs.
// It is a pure function of simulation state, so sampling it is deterministic.
type WheelStats struct {
	// Pending mirrors Engine.Pending: scheduled, neither fired nor cancelled.
	Pending int
	// WheelResident counts nodes parked in wheel slots, including
	// lazily-cancelled ones not yet collected.
	WheelResident int
	// Levels breaks WheelResident down per wheel level.
	Levels [wheelLevels]int
	// OccupiedSlots counts wheel slots holding at least one node.
	OccupiedSlots int
	// Overflow is the depth of the beyond-horizon heap.
	Overflow int
	// Ready is the depth of the due-now ordering heap.
	Ready int
	// FreeNodes is the size of the node recycling pool.
	FreeNodes int
}

// WheelStats returns the event queue census at this instant.
func (e *Engine) WheelStats() WheelStats {
	s := WheelStats{
		Pending:       e.live,
		WheelResident: e.wheelCount,
		Levels:        e.levelCount,
		Overflow:      len(e.overflow),
		Ready:         len(e.ready),
		FreeNodes:     len(e.free),
	}
	for l := 0; l < wheelLevels; l++ {
		for _, w := range e.bitmap[l] {
			s.OccupiedSlots += bits.OnesCount64(w)
		}
	}
	return s
}

// Interrupt asks the engine to stop executing events: every subsequent Step,
// Run, RunFor, or Drain call returns without firing anything. It is the only
// Engine method safe to call from another goroutine — the harness uses it to
// cancel a trial that overran its wall-clock budget. Interrupting does not
// corrupt engine state; it only freezes the simulation.
func (e *Engine) Interrupt() { e.stopped.Store(true) }

// Interrupted reports whether Interrupt has been called.
func (e *Engine) Interrupted() bool { return e.stopped.Load() }

// alloc takes a node from the free list, or mints one.
func (e *Engine) alloc() *node {
	if n := len(e.free); n > 0 {
		nd := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return nd
	}
	return &node{eng: e}
}

// recycle invalidates every outstanding handle to n (by bumping the
// generation) and returns it to the free list.
func (e *Engine) recycle(n *node) {
	n.gen++
	n.fn = nil
	n.canceled = false
	e.free = append(e.free, n)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	n := e.alloc()
	n.at, n.seq, n.fn = t, e.seq, fn
	e.live++
	e.place(n)
	return Event{n: n, at: t, gen: n.gen}
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// place files a node into the ready heap, a wheel slot, or the overflow
// heap, depending on how far its tick is from the cursor. The level test is
// on slot-index distance, not raw tick delta: an event must always land in a
// slot the cursor has not yet passed at that level, or it would only be
// reached after a full ring revolution.
func (e *Engine) place(n *node) {
	tick := int64(n.at) >> tickShift
	if tick <= e.cur {
		// The cursor has already reached (or passed) this tick — possible
		// both for events scheduled at the current instant and after the
		// cursor ran ahead of the clock chasing a far-future event. The
		// ready heap keeps them in exact fire order either way.
		e.ready.push(n)
		return
	}
	for l := 0; l < wheelLevels; l++ {
		shift := uint(wheelBits * l)
		if (tick>>shift)-(e.cur>>shift) < wheelSlots {
			slot := int((tick >> shift) & wheelMask)
			e.slots[l][slot] = append(e.slots[l][slot], n)
			e.bitmap[l][slot>>6] |= 1 << uint(slot&63)
			e.wheelCount++
			e.levelCount[l]++
			return
		}
	}
	e.overflow.push(n)
}

// nextSlot returns the first occupied slot index >= from in ring l, or -1 if
// the rest of the ring is empty.
func (e *Engine) nextSlot(l, from int) int {
	if from >= wheelSlots {
		return -1
	}
	w := from >> 6
	word := e.bitmap[l][w] &^ (1<<uint(from&63) - 1)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= wheelSlots/64 {
			return -1
		}
		word = e.bitmap[l][w]
	}
}

// dumpSlot0 moves a level-0 slot's contents into the ready heap, collecting
// cancelled nodes on the way, and marks the slot empty.
func (e *Engine) dumpSlot0(slot int) {
	s := e.slots[0][slot]
	e.bitmap[0][slot>>6] &^= 1 << uint(slot&63)
	for i, n := range s {
		s[i] = nil
		e.wheelCount--
		e.levelCount[0]--
		if n.canceled {
			e.recycle(n)
		} else {
			e.ready.push(n)
		}
	}
	e.slots[0][slot] = s[:0]
}

// cascade redistributes a level-l slot whose span the cursor has entered:
// every node lands in a finer ring (or the ready heap, if its tick is the
// cursor's own), and cancelled nodes are collected. Correctness does not
// depend on when cascades happen — only that a slot is cascaded before the
// cursor would pass an event inside it.
func (e *Engine) cascade(l, slot int) {
	s := e.slots[l][slot]
	e.bitmap[l][slot>>6] &^= 1 << uint(slot&63)
	for i, n := range s {
		s[i] = nil
		e.wheelCount--
		e.levelCount[l]--
		if n.canceled {
			e.recycle(n)
			continue
		}
		e.place(n)
	}
	e.slots[l][slot] = s[:0]
}

// promoteOverflow drains overflow-heap events whose ticks have come inside
// the wheel horizon. The overflow invariant — every overflow event is later
// than every wheel event — makes the in-range test a cheap peek: only the
// heap minimum can ever be due for promotion.
func (e *Engine) promoteOverflow() {
	const topShift = uint(wheelBits * (wheelLevels - 1))
	for len(e.overflow) > 0 {
		n := e.overflow[0]
		if n.canceled {
			e.recycle(e.overflow.pop())
			continue
		}
		if (int64(n.at)>>tickShift>>topShift)-(e.cur>>topShift) >= wheelSlots {
			return
		}
		e.place(e.overflow.pop())
	}
}

// advance moves the cursor to the next occupied point of the wheel — the
// nearest slot at the finest occupied level — dumping or cascading what it
// finds, but never beyond limitTick. It reports whether it made progress;
// false means no wheel event can fire at or before the limit. Rings whose
// levelCount is zero are skipped wholesale, so sparse stretches cost bitmap
// scans, not per-tick iteration; the one-window fallbacks below only run
// when a finer ring still holds events that wrapped past its window edge.
func (e *Engine) advance(limitTick int64) bool {
	e.promoteOverflow()
	// Level 0: nearest occupied slot before the window edge.
	if e.levelCount[0] > 0 {
		if s := e.nextSlot(0, int(e.cur&wheelMask)+1); s >= 0 {
			tick := (e.cur &^ wheelMask) | int64(s)
			if tick > limitTick {
				return false
			}
			e.cur = tick
			e.dumpSlot0(s)
			return true
		}
		// Level 0 still holds events, but they wrapped past the window
		// edge: cross exactly one window so their slots come back into
		// scan range. The level-1 (and, on a ring wrap, level-2) slot that
		// spans the new window must cascade first — its contents belong to
		// the same window.
		return e.stepWindow(limitTick)
	}
	p1 := e.cur >> wheelBits
	if s := e.nextSlot(1, int(p1&wheelMask)+1); s >= 0 {
		tick := ((p1 &^ wheelMask) | int64(s)) << wheelBits
		if tick > limitTick {
			return false
		}
		e.cur = tick
		e.cascade(1, s)
		return true
	}
	if e.levelCount[1] > 0 {
		// Wrapped level-1 slots: cross one level-2 boundary to unwrap them.
		p2 := e.cur >> (2 * wheelBits)
		tick := (p2 + 1) << (2 * wheelBits)
		if tick > limitTick {
			return false
		}
		e.cur = tick
		if s := int((p2 + 1) & wheelMask); e.bitmap[2][s>>6]&(1<<uint(s&63)) != 0 {
			e.cascade(2, s)
		}
		if e.bitmap[1][0]&1 != 0 {
			e.cascade(1, 0)
		}
		return true
	}
	p2 := e.cur >> (2 * wheelBits)
	if s := e.nextSlot(2, int(p2&wheelMask)+1); s >= 0 {
		tick := ((p2 &^ wheelMask) | int64(s)) << (2 * wheelBits)
		if tick > limitTick {
			return false
		}
		e.cur = tick
		e.cascade(2, s)
		return true
	}
	if e.levelCount[2] > 0 {
		// Wrapped level-2 slots: cross the top-ring boundary.
		p3 := e.cur >> (3 * wheelBits)
		tick := (p3 + 1) << (3 * wheelBits)
		if tick > limitTick {
			return false
		}
		e.cur = tick
		if e.bitmap[2][0]&1 != 0 {
			e.cascade(2, 0)
		}
		return true
	}
	// The wheel is empty; the caller falls back to the overflow heap.
	return false
}

// stepWindow crosses exactly one level-0 window boundary, cascading the
// coarser slots that span the window the cursor enters.
func (e *Engine) stepWindow(limitTick int64) bool {
	p1 := e.cur>>wheelBits + 1
	tick := p1 << wheelBits
	if tick > limitTick {
		return false
	}
	e.cur = tick
	if p1&wheelMask == 0 {
		// Level-1 ring wrap: the level-2 slot spanning the new window
		// cascades first, possibly refilling level-1 slot 0.
		if s := int((p1 >> wheelBits) & wheelMask); e.bitmap[2][s>>6]&(1<<uint(s&63)) != 0 {
			e.cascade(2, s)
		}
	}
	if s := int(p1 & wheelMask); e.bitmap[1][s>>6]&(1<<uint(s&63)) != 0 {
		e.cascade(1, s)
	}
	if e.bitmap[0][0]&1 != 0 {
		e.dumpSlot0(0)
	}
	return true
}

// next pops the globally earliest pending event, provided it fires at or
// before limit; it returns nil otherwise. The cursor advances only as far as
// the earlier of that event and the limit, so a Run that stops short leaves
// the wheel positioned for cheap rescheduling.
func (e *Engine) next(limit Time) *node {
	limitTick := int64(limit) >> tickShift
	for {
		for len(e.ready) > 0 {
			n := e.ready[0]
			if n.canceled {
				e.recycle(e.ready.pop())
				continue
			}
			if n.at > limit {
				return nil
			}
			return e.ready.pop()
		}
		if e.wheelCount == 0 {
			for len(e.overflow) > 0 && e.overflow[0].canceled {
				e.recycle(e.overflow.pop())
			}
			if len(e.overflow) == 0 || e.overflow[0].at > limit {
				return nil
			}
			// Re-base the cursor at the overflow minimum; promotion then
			// pulls it (and everything else newly in range) into the wheel
			// or the ready heap.
			e.cur = int64(e.overflow[0].at) >> tickShift
			e.promoteOverflow()
			continue
		}
		if !e.advance(limitTick) {
			return nil
		}
	}
}

// fire executes one node: clock forward, node recycled, callback run. The
// node is recycled before the callback so the callback can reschedule
// without growing the pool, and so the event's own handle is already inert
// (not Active) while it runs.
func (e *Engine) fire(n *node) {
	e.now = n.at
	fn := n.fn
	e.live--
	e.recycle(n)
	e.nfired++
	fn()
}

// Step executes the next pending event, advancing the clock to its time.
// It returns false if the queue is empty or the engine was interrupted.
func (e *Engine) Step() bool {
	if e.stopped.Load() {
		return false
	}
	n := e.next(maxTime)
	if n == nil {
		return false
	}
	e.fire(n)
	return true
}

// Run executes events in order until the clock would pass `until`, then sets
// the clock to exactly `until`. Events scheduled at `until` itself are
// executed.
func (e *Engine) Run(until Time) {
	for !e.stopped.Load() {
		n := e.next(until)
		if n == nil {
			break
		}
		e.fire(n)
	}
	if e.now < until {
		e.now = until
	}
}

// RunFor advances the simulation by d virtual time.
func (e *Engine) RunFor(d Duration) { e.Run(e.now.Add(d)) }

// Drain runs until the event queue is empty or limit events have fired.
// It returns the number of events executed.
func (e *Engine) Drain(limit uint64) uint64 {
	var n uint64
	for n < limit && e.Step() {
		n++
	}
	return n
}
