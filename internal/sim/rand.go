package sim

import (
	"math"
	"math/rand"
)

// Random-variate helpers used by workload generators and the cache model.
// They all draw from the engine's seeded source so results are reproducible.

// Exp returns an exponentially distributed duration with the given mean.
func Exp(rng *rand.Rand, mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	return Duration(rng.ExpFloat64() * float64(mean))
}

// Uniform returns a duration uniformly distributed in [lo, hi).
func Uniform(rng *rand.Rand, lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(rng.Int63n(int64(hi-lo)))
}

// Normal returns a normally distributed duration clamped at zero.
func Normal(rng *rand.Rand, mean, stddev Duration) Duration {
	v := float64(mean) + rng.NormFloat64()*float64(stddev)
	if v < 0 {
		v = 0
	}
	return Duration(v)
}

// Jitter returns base scaled by a uniform factor in [1-f, 1+f].
func Jitter(rng *rand.Rand, base Duration, f float64) Duration {
	if f <= 0 {
		return base
	}
	scale := 1 + f*(2*rng.Float64()-1)
	return Duration(float64(base) * scale)
}

// Pareto returns a bounded Pareto-distributed duration with the given shape
// and minimum; values are capped at max. Heavy-tailed service times in
// latency experiments use this.
func Pareto(rng *rand.Rand, shape float64, min, max Duration) Duration {
	if shape <= 0 || min <= 0 {
		return min
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	v := float64(min) / math.Pow(u, 1/shape)
	if v > float64(max) {
		v = float64(max)
	}
	return Duration(v)
}
