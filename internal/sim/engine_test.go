package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 100 {
		t.Fatalf("Run should land exactly on until: now=%v", e.Now())
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(5)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events must fire in insertion order, got %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.Run(20)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if ev.Active() {
		t.Fatal("cancelled event reports active")
	}
}

func TestEngineCancelDuringRun(t *testing.T) {
	e := NewEngine(1)
	fired := false
	var ev2 Event
	e.At(10, func() { ev2.Cancel() })
	ev2 = e.At(11, func() { fired = true })
	e.Run(20)
	if fired {
		t.Fatal("event cancelled by earlier event still fired")
	}
}

func TestEngineAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var trace []Time
	e.After(5, func() {
		trace = append(trace, e.Now())
		e.After(5, func() { trace = append(trace, e.Now()) })
	})
	e.Run(100)
	if len(trace) != 2 || trace[0] != 5 || trace[1] != 10 {
		t.Fatalf("nested scheduling wrong: %v", trace)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {})
	e.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past must panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineRunStopsAtBoundary(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.At(10, func() { fired = append(fired, 10) })
	e.At(20, func() { fired = append(fired, 20) })
	e.At(30, func() { fired = append(fired, 30) })
	e.Run(20)
	if len(fired) != 2 {
		t.Fatalf("events at exactly `until` must fire; got %v", fired)
	}
	e.Run(30)
	if len(fired) != 3 {
		t.Fatalf("remaining events must fire on next Run; got %v", fired)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var out []int64
		var step func()
		step = func() {
			out = append(out, int64(e.Now()))
			if len(out) < 50 {
				e.After(Duration(1+e.Rand().Int63n(1000)), step)
			}
		}
		e.After(1, step)
		e.Run(1 << 40)
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed must give identical schedules: %v vs %v at %d", a[i], b[i], i)
		}
	}
}

// Property: events always fire in non-decreasing time order no matter how
// they were inserted.
func TestEngineOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine(7)
		var fired []Time
		for _, d := range delays {
			e.At(Time(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run(1 << 20)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVariateHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if d := Exp(rng, Millisecond); d < 0 {
			t.Fatal("Exp returned negative")
		}
		if d := Uniform(rng, 10, 20); d < 10 || d >= 20 {
			t.Fatalf("Uniform out of range: %d", d)
		}
		if d := Normal(rng, Millisecond, Millisecond); d < 0 {
			t.Fatal("Normal returned negative")
		}
		if d := Jitter(rng, 100, 0.5); d < 50 || d > 150 {
			t.Fatalf("Jitter out of range: %d", d)
		}
		if d := Pareto(rng, 1.5, 100, 10000); d < 100 || d > 10000 {
			t.Fatalf("Pareto out of range: %d", d)
		}
	}
	if Exp(rng, 0) != 0 {
		t.Fatal("Exp with non-positive mean must be 0")
	}
	if Uniform(rng, 20, 10) != 20 {
		t.Fatal("Uniform with hi<=lo must return lo")
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1500 * Millisecond)
	if tm.Seconds() != 1.5 {
		t.Fatalf("Seconds: %v", tm.Seconds())
	}
	if tm.Add(500*Duration(Millisecond)).Sub(tm) != Duration(500*Millisecond) {
		t.Fatal("Add/Sub roundtrip failed")
	}
	if DurationOfSeconds(0.25) != 250*Millisecond {
		t.Fatal("DurationOfSeconds")
	}
}

func TestEngineAuxiliaries(t *testing.T) {
	e := NewEngine(1)
	if e.Pending() != 0 || e.Fired() != 0 {
		t.Fatal("fresh engine must be empty")
	}
	ev := e.At(10, func() {})
	e.At(20, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending=%d", e.Pending())
	}
	if ev.Time() != 10 {
		t.Fatalf("event time=%v", ev.Time())
	}
	e.RunFor(15)
	if e.Fired() != 1 || e.Now() != 15 {
		t.Fatalf("fired=%d now=%v", e.Fired(), e.Now())
	}
	if n := e.Drain(10); n != 1 {
		t.Fatalf("drain=%d", n)
	}
	if e.Step() {
		t.Fatal("step on empty queue must return false")
	}
	var zero Event
	zero.Cancel() // must not panic
	if zero.Active() {
		t.Fatal("zero event is not active")
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	e := NewEngine(1)
	evs := make([]Event, 5)
	for i := range evs {
		evs[i] = e.At(Time(10*(i+1)), func() {})
	}
	if e.Pending() != 5 {
		t.Fatalf("pending=%d want 5", e.Pending())
	}
	evs[1].Cancel()
	evs[3].Cancel()
	if e.Pending() != 3 {
		t.Fatalf("cancelled events must not count: pending=%d want 3", e.Pending())
	}
	evs[1].Cancel() // double cancel must not double-count
	if e.Pending() != 3 {
		t.Fatalf("double cancel skewed accounting: pending=%d", e.Pending())
	}
	e.Run(35) // fires ev0, discards cancelled ev1, fires ev2
	if e.Fired() != 2 {
		t.Fatalf("fired=%d want 2", e.Fired())
	}
	if e.Pending() != 1 {
		t.Fatalf("after run pending=%d want 1", e.Pending())
	}
	evs[0].Cancel() // cancelling a fired event is a no-op
	if e.Pending() != 1 {
		t.Fatalf("cancel-after-fire skewed accounting: pending=%d", e.Pending())
	}
	e.Run(100)
	if e.Pending() != 0 || e.Fired() != 3 {
		t.Fatalf("end state pending=%d fired=%d", e.Pending(), e.Fired())
	}
}

func TestCancelThenRunDiscardsExactly(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	var evs []Event
	for i := 0; i < 100; i++ {
		evs = append(evs, e.At(Time(i), func() { fired++ }))
	}
	for i := 0; i < 100; i += 2 {
		evs[i].Cancel()
	}
	if e.Pending() != 50 {
		t.Fatalf("pending=%d want 50", e.Pending())
	}
	e.Run(1000)
	if fired != 50 || e.Pending() != 0 {
		t.Fatalf("fired=%d pending=%d", fired, e.Pending())
	}
}

func TestLazyCancellationPreservesOrderAndCollects(t *testing.T) {
	e := NewEngine(1)
	var order []Time
	var cancel []Event
	// Spread events across many ticks and slots so cancelled nodes sit in
	// wheel slots, not just the ready heap.
	for i := 0; i < 4096; i++ {
		ev := e.At(Time(i)*Time(Millisecond), func() { order = append(order, e.Now()) })
		if i%8 != 0 {
			cancel = append(cancel, ev)
		}
	}
	for _, ev := range cancel {
		ev.Cancel()
	}
	if e.Pending() != 512 {
		t.Fatalf("pending=%d want 512", e.Pending())
	}
	e.Run(Time(4096) * Time(Millisecond))
	if len(order) != 512 {
		t.Fatalf("fired %d want 512", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("lazy cancellation broke ordering at %d: %v then %v", i, order[i-1], order[i])
		}
	}
	// Every cancelled node must have been collected back into the pool.
	if e.wheelCount != 0 || len(e.ready) != 0 || len(e.overflow) != 0 {
		t.Fatalf("garbage left behind: wheel=%d ready=%d overflow=%d",
			e.wheelCount, len(e.ready), len(e.overflow))
	}
}

func TestGenerationSafetyAfterReuse(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	stale := e.At(10, func() { fired++ })
	e.Run(10)
	if fired != 1 {
		t.Fatalf("fired=%d", fired)
	}
	// The node behind `stale` is back in the pool. Schedule a new event that
	// reuses it; the stale handle must stay inert.
	fresh := e.At(20, func() { fired++ })
	if stale.Active() {
		t.Fatal("stale handle reports active after node reuse")
	}
	stale.Cancel() // must NOT cancel the fresh event occupying the node
	if !fresh.Active() {
		t.Fatal("stale Cancel leaked through to the reused node")
	}
	if stale.Time() != 10 {
		t.Fatalf("stale handle lost its timestamp: %v", stale.Time())
	}
	e.Run(20)
	if fired != 2 {
		t.Fatalf("fresh event did not fire: fired=%d", fired)
	}
	// Same safety for cancel-then-reuse: a cancelled handle whose node is
	// collected and reissued must not be able to cancel the new occupant.
	c := e.At(30, func() {})
	c.Cancel()
	e.Run(30) // collects the cancelled node
	reused := e.At(40, func() { fired++ })
	c.Cancel() // stale double-cancel
	if !reused.Active() {
		t.Fatal("stale double-Cancel killed a reused node")
	}
	e.Run(40)
	if fired != 3 {
		t.Fatalf("reused event did not fire: fired=%d", fired)
	}
}

func TestFarFutureOverflowAndPromotion(t *testing.T) {
	e := NewEngine(1)
	var order []Time
	// Beyond the wheel horizon (~68.7s): lands in the overflow heap.
	far := Time(600) * Time(Second)
	e.At(far, func() { order = append(order, e.Now()) })
	e.At(far+1, func() { order = append(order, e.Now()) })
	// Near-future event interleaved.
	e.At(5, func() { order = append(order, e.Now()) })
	if len(e.overflow) != 2 {
		t.Fatalf("far events not in overflow: %d", len(e.overflow))
	}
	e.Run(far + 1)
	want := []Time{5, far, far + 1}
	if len(order) != 3 {
		t.Fatalf("fired %d want 3: %v", len(order), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("promotion broke order: got %v want %v", order, want)
		}
	}
}

func TestInterruptStopsExecution(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() { fired++ })
	}
	e.At(4, func() { e.Interrupt() })
	e.Run(100)
	if fired != 5 {
		t.Fatalf("interrupt must stop further events: fired=%d", fired)
	}
	if !e.Interrupted() {
		t.Fatal("Interrupted() must report true")
	}
	if e.Now() != 100 {
		t.Fatalf("interrupted Run must still land on until: now=%v", e.Now())
	}
	e.RunFor(50)
	if fired != 5 {
		t.Fatal("interrupted engine fired more events")
	}
	if e.Step() {
		t.Fatal("Step on interrupted engine must return false")
	}
	if e.Drain(10) != 0 {
		t.Fatal("Drain on interrupted engine must execute nothing")
	}
}

func TestEngineNegativeAfterPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay must panic")
		}
	}()
	e.After(-1, func() {})
}

func TestDrainLimit(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() { count++ })
	}
	if n := e.Drain(4); n != 4 || count != 4 {
		t.Fatalf("drain=%d count=%d", n, count)
	}
}

func TestFormattingHelpers(t *testing.T) {
	if s := Time(1500 * Millisecond).String(); s != "1.500000s" {
		t.Fatalf("time string %q", s)
	}
	if s := (2500 * Microsecond).String(); s != "2.500ms" {
		t.Fatalf("duration string %q", s)
	}
	if Time(3*Millisecond).Milliseconds() != 3 {
		t.Fatal("time ms")
	}
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Fatal("duration seconds")
	}
	if (2 * Millisecond).Milliseconds() != 2 {
		t.Fatal("duration ms")
	}
}

func TestVariateEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if Jitter(rng, 100, 0) != 100 {
		t.Fatal("zero jitter must return base")
	}
	if Pareto(rng, 0, 100, 1000) != 100 {
		t.Fatal("degenerate pareto must return min")
	}
	if Pareto(rng, 2, 0, 1000) != 0 {
		t.Fatal("non-positive min must return min")
	}
}
