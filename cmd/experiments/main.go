// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig14                  # one experiment
//	experiments -run all                    # everything, in paper order
//	experiments -run fig18 -scale 0.3       # shorter measurement windows
//	experiments -run all -json              # machine-readable reports
//	experiments -run all -parallel 8        # fan out over 8 workers
//	experiments -run all -reps 5            # 5 replicate seeds, mean±stddev cells
//	experiments -run all -timeout 10m       # per-trial wall-clock budget
//	experiments -run all -out run.jsonl     # JSON-lines artifact with metadata
//
// Reports go to stdout; timing and progress go to stderr, so stdout is a
// pure function of (-run, -seed, -reps, -scale): a -parallel N run is
// byte-identical to the serial one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vsched/internal/experiments"
	"vsched/internal/harness"
)

func main() {
	var (
		run      = flag.String("run", "", "experiment id (fig2..fig21, table2..table4), comma list, or 'all'")
		list     = flag.Bool("list", false, "list experiment ids")
		seed     = flag.Int64("seed", 42, "base simulation seed")
		scale    = flag.Float64("scale", 1.0, "measurement window scale factor")
		verbose  = flag.Bool("v", false, "verbose notes")
		asJSON   = flag.Bool("json", false, "emit reports as JSON lines")
		parallel = flag.Int("parallel", 1, "worker pool size (1 = serial reference path)")
		reps     = flag.Int("reps", 1, "replicate seeds per experiment; >1 adds mean±stddev [min,max] cells")
		timeout  = flag.Duration("timeout", 0, "per-trial wall-clock budget (0 = none)")
		out      = flag.String("out", "", "write a JSON-lines run artifact (seeds, wall time, events, reports)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n", r.ID, r.Title)
		}
		if *run == "" {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	var runners []experiments.Runner
	if strings.EqualFold(*run, "all") {
		runners = experiments.Registry()
	} else {
		for _, id := range strings.Split(*run, ",") {
			r, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			runners = append(runners, r)
		}
	}

	res := harness.Run(harness.Config{
		Runners:  runners,
		BaseSeed: *seed,
		Reps:     *reps,
		Scale:    *scale,
		Verbose:  *verbose,
		Workers:  *parallel,
		Timeout:  *timeout,
	})

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := res.WriteArtifact(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, ex := range res.Experiments {
			for i := range ex.Trials {
				t := &ex.Trials[i]
				if !t.OK() {
					fmt.Fprintf(os.Stderr, "%s rep %d (seed %d): %s\n", t.ExperimentID, t.Replicate, t.Seed, t.Err)
					continue
				}
				if err := enc.Encode(t.Report); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
	} else {
		fmt.Print(res.Text())
	}
	fmt.Fprintf(os.Stderr, "(%d trials over %d workers: %d events in %v wall time, %d failed)\n",
		res.Trials(), res.Workers, res.EventsFired(), res.WallTime.Round(time.Millisecond), res.Failed())
	if res.Failed() > 0 {
		os.Exit(1)
	}
}
