// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig14                  # one experiment
//	experiments -run all                    # everything, in paper order
//	experiments -run fig18 -scale 0.3       # shorter measurement windows
//	experiments -run all -json              # machine-readable reports
//	experiments -run all -parallel 8        # fan out over 8 workers
//	experiments -run all -reps 5            # 5 replicate seeds, mean±stddev cells
//	experiments -run all -timeout 10m       # per-trial wall-clock budget
//	experiments -run all -retries 2         # re-attempt timed-out/panicked trials
//	experiments -run all -out run.jsonl     # JSON-lines artifact with metadata
//	experiments -bench core -reps 5         # engine benchmark -> BENCH_core.json
//	experiments -bench fleet -reps 3        # fleet/placement benchmark -> BENCH_fleet.json
//	experiments -bench core -smoke          # CI pipeline check, seconds not minutes
//	experiments -bench diff old.json new.json  # compare artifacts, exit 1 on regression
//	experiments -run fleetobs -telemetry    # append flight-recorder sparklines
//	experiments -run all -progress          # rate-limited done/total + ETA heartbeat on stderr
//	experiments -run all -serve :9137       # live /metrics + /runs/experiments/events while running
//
// Reports go to stdout; timing and progress go to stderr, so stdout is a
// pure function of (-run, -seed, -reps, -scale): a -parallel N run is
// byte-identical to the serial one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"vsched/internal/experiments"
	"vsched/internal/harness"
	"vsched/internal/obshttp"
	"vsched/internal/profiling"
	"vsched/internal/simbench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags in, exit code out, all output on
// the given writers.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runIDs    = fs.String("run", "", "experiment id (fig2..fig21, table2..table4), comma list, or 'all'")
		list      = fs.Bool("list", false, "list experiment ids")
		seed      = fs.Int64("seed", 42, "base simulation seed")
		scale     = fs.Float64("scale", 1.0, "measurement window scale factor")
		verbose   = fs.Bool("v", false, "verbose notes")
		asJSON    = fs.Bool("json", false, "emit reports as JSON lines")
		parallel  = fs.Int("parallel", 1, "worker pool size (1 = serial reference path)")
		reps      = fs.Int("reps", 1, "replicate seeds per experiment; >1 adds mean±stddev [min,max] cells")
		timeout   = fs.Duration("timeout", 0, "per-trial wall-clock budget (0 = none)")
		retries   = fs.Int("retries", 0, "extra attempts per trial after a panic or timeout (0 = fail fast)")
		out       = fs.String("out", "", "write a JSON-lines run artifact (seeds, wall time, events, reports)")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
		bench     = fs.String("bench", "", "run a benchmark family ('core', 'fleet'), or 'diff <old.json> <new.json>'")
		smoke     = fs.Bool("smoke", false, "with -bench: shrink scenarios to a CI-sized pipeline check")
		threshold = fs.Float64("threshold", 0.10, "with -bench diff: regression threshold as a fraction (0.10 = 10% slower fails)")
		telem     = fs.Bool("telemetry", false, "print flight-recorder sparkline summaries for experiments that record telemetry")
		serve     = fs.String("serve", "", "serve live observability on this address for the duration of the run: Prometheus /metrics, /runs, /runs/experiments/events, pprof (e.g. 127.0.0.1:9137, or :0 for an ephemeral port)")
		progress  = fs.Bool("progress", false, "print a rate-limited progress heartbeat (done/total trials, mean trial time, ETA) to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "profiling:", err)
		}
	}()

	if *bench == "diff" {
		return runBenchDiff(fs.Args(), *threshold, stdout, stderr)
	}
	if *bench != "" {
		return runBench(*bench, *out, *seed, *reps, *smoke, stdout, stderr)
	}

	if *list || *runIDs == "" {
		fmt.Fprintln(stdout, "available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Fprintf(stdout, "  %-8s %s\n", r.ID, r.Title)
		}
		if *runIDs == "" {
			fmt.Fprintln(stdout, "\nuse -run <id> or -run all")
		}
		return 0
	}

	var runners []experiments.Runner
	if strings.EqualFold(*runIDs, "all") {
		runners = experiments.Registry()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			r, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "unknown experiment %q (use -list)\n", id)
				return 1
			}
			runners = append(runners, r)
		}
	}

	hcfg := harness.Config{
		Runners:  runners,
		BaseSeed: *seed,
		Reps:     *reps,
		Scale:    *scale,
		Verbose:  *verbose,
		Workers:  *parallel,
		Timeout:  *timeout,
		Retries:  *retries,
	}
	if *progress {
		hcfg.Heartbeat = stderr
	}
	// The live ops plane: trial progress and the run listing served over HTTP
	// while the harness runs. Publication is inert by construction (bounded
	// bus, atomic handoffs), so attaching it cannot change stdout: reports
	// stay a pure function of (-run, -seed, -reps, -scale).
	var obsRun *obshttp.Run
	if *serve != "" {
		osrv := obshttp.New(obshttp.Options{})
		bound, err := osrv.ListenAndServe(*serve)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "observability: http://%s/metrics, /runs/experiments/events\n", bound)
		obsRun = osrv.Register("experiments")
		hcfg.Obs = obsRun.Publisher()
		defer func() {
			// Mark the stream done and give attached consumers a beat to
			// drain their terminal record before the listener dies with us.
			obsRun.Finish()
			time.Sleep(100 * time.Millisecond)
			osrv.Close()
		}()
	}
	res := harness.Run(hcfg)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := res.WriteArtifact(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		for _, ex := range res.Experiments {
			for i := range ex.Trials {
				t := &ex.Trials[i]
				if !t.OK() {
					fmt.Fprintf(stderr, "%s rep %d (seed %d): %s\n", t.ExperimentID, t.Replicate, t.Seed, t.Err)
					continue
				}
				if err := enc.Encode(t.Report); err != nil {
					fmt.Fprintln(stderr, err)
					return 1
				}
			}
		}
	} else {
		fmt.Fprint(stdout, res.Text())
	}
	if *telem {
		printTelemetry(stdout, res)
	}
	fmt.Fprintf(stderr, "(%d trials over %d workers: %d events in %v wall time, %d failed)\n",
		res.Trials(), res.Workers, res.EventsFired(), res.WallTime.Round(time.Millisecond), res.Failed())
	if res.Failed() > 0 {
		return 1
	}
	return 0
}

// printTelemetry dumps each trial's deterministic flight-recorder summaries
// (sparklines per series) in registry order. Snapshots contain only
// sim-clock-driven series, so this block is as reproducible as the reports
// above it.
func printTelemetry(stdout io.Writer, res *harness.Result) {
	for _, ex := range res.Experiments {
		for i := range ex.Trials {
			t := &ex.Trials[i]
			if len(t.Telemetry) == 0 {
				continue
			}
			labels := make([]string, 0, len(t.Telemetry))
			for l := range t.Telemetry {
				labels = append(labels, l)
			}
			sort.Strings(labels)
			for _, l := range labels {
				fmt.Fprintf(stdout, "-- %s rep %d: %s --\n%s\n", t.ExperimentID, t.Replicate, l,
					t.Telemetry[l].Summary())
			}
		}
	}
}

// runBenchDiff compares two benchmark artifacts (e.g. a committed
// BENCH_core.json baseline vs a fresh run) and exits non-zero when any cell's
// mean slowed past the threshold, so CI can gate on engine regressions.
func runBenchDiff(paths []string, threshold float64, stdout, stderr io.Writer) int {
	if len(paths) != 2 {
		fmt.Fprintln(stderr, "usage: experiments -bench diff [-threshold 0.10] <old.json> <new.json>")
		return 2
	}
	load := func(p string) (simbench.Result, error) {
		f, err := os.Open(p)
		if err != nil {
			return simbench.Result{}, err
		}
		defer f.Close()
		return simbench.Read(f)
	}
	old, err := load(paths[0])
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	cur, err := load(paths[1])
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	d, err := simbench.Diff(old, cur, threshold)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	d.WriteText(stdout)
	if d.Regressions() > 0 {
		return 1
	}
	return 0
}

// runBench executes a benchmark family ('core' or 'fleet') and writes the
// schema-versioned artifact (default BENCH_<family>.json). The artifact is
// read back after writing, so a run that exits 0 has produced a valid file.
func runBench(family, outPath string, seed int64, reps int, smoke bool, stdout, stderr io.Writer) int {
	start := time.Now()
	var res simbench.Result
	var err error
	switch family {
	case "core":
		if outPath == "" {
			outPath = "BENCH_core.json"
		}
		res, err = simbench.RunCore(simbench.CoreConfig{BaseSeed: seed, Reps: reps, Smoke: smoke}, stderr)
	case "fleet":
		if outPath == "" {
			outPath = "BENCH_fleet.json"
		}
		res, err = simbench.RunFleet(simbench.FleetConfig{BaseSeed: seed, Reps: reps, Smoke: smoke}, stderr)
	default:
		fmt.Fprintf(stderr, "unknown benchmark family %q (want 'core' or 'fleet')\n", family)
		return 1
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	f, err := os.Create(outPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := simbench.Write(f, res); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// Schema check: the artifact on disk must round-trip.
	rf, err := os.Open(outPath)
	if err == nil {
		_, err = simbench.Read(rf)
		rf.Close()
	}
	if err != nil {
		fmt.Fprintf(stderr, "artifact failed schema check: %v\n", err)
		return 1
	}
	if s, ok := res.Speedup("hold/pending=100000"); ok {
		fmt.Fprintf(stdout, "wheel/heap speedup at 1e5 pending: %.2fx\n", s)
	}
	if s, ok := res.IndexSpeedup(); ok {
		fmt.Fprintf(stdout, "index/scan placement speedup: %.2fx\n", s)
	}
	fmt.Fprintf(stdout, "wrote %s (%d scenarios, %d reps)\n", outPath, len(res.Scenarios), res.Reps)
	fmt.Fprintf(stderr, "(benchmark wall time %v)\n", time.Since(start).Round(time.Millisecond))
	return 0
}
