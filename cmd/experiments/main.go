// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig14            # one experiment
//	experiments -run all              # everything, in paper order
//	experiments -run fig18 -scale 0.3 # shorter measurement windows
//	experiments -run all -json        # machine-readable reports
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vsched/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment id (fig2..fig21, table2..table4) or 'all'")
		list    = flag.Bool("list", false, "list experiment ids")
		seed    = flag.Int64("seed", 42, "simulation seed")
		scale   = flag.Float64("scale", 1.0, "measurement window scale factor")
		verbose = flag.Bool("v", false, "verbose notes")
		asJSON  = flag.Bool("json", false, "emit reports as JSON lines")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n", r.ID, r.Title)
		}
		if *run == "" {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	opt := experiments.Options{Seed: *seed, Scale: *scale, Verbose: *verbose}
	var runners []experiments.Runner
	if strings.EqualFold(*run, "all") {
		runners = experiments.Registry()
	} else {
		for _, id := range strings.Split(*run, ",") {
			r, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			runners = append(runners, r)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	for _, r := range runners {
		start := time.Now()
		rep := r.Run(opt)
		if *asJSON {
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s regenerated in %v wall time)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
