package main

import (
	"strings"
	"testing"

	"vsched/internal/experiments"
)

// TestListPrintsEveryExperiment pins the catalog contract: -list names
// every registered experiment with its one-line description and exits 0.
func TestListPrintsEveryExperiment(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, errb.String())
	}
	text := out.String()
	if !strings.HasPrefix(text, "available experiments:") {
		t.Fatalf("unexpected -list header:\n%s", text)
	}
	reg := experiments.Registry()
	for _, r := range reg {
		line := false
		for _, l := range strings.Split(text, "\n") {
			if strings.HasPrefix(strings.TrimSpace(l), r.ID+" ") && strings.Contains(l, r.Title) {
				line = true
				break
			}
		}
		if !line {
			t.Errorf("-list output missing %q (%s)", r.ID, r.Title)
		}
	}
	// One line per experiment plus the header: nothing unregistered sneaks in.
	n := 0
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, "  ") {
			n++
		}
	}
	if n != len(reg) {
		t.Fatalf("-list printed %d entries, registry has %d", n, len(reg))
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-run", "nonsense"}, &out, &errb); code != 1 {
		t.Fatalf("unknown id exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Fatalf("missing diagnostic, stderr: %s", errb.String())
	}
}

func TestUnknownFlagFails(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
