package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vsched/internal/experiments"
	"vsched/internal/simbench"
)

// TestListPrintsEveryExperiment pins the catalog contract: -list names
// every registered experiment with its one-line description and exits 0.
func TestListPrintsEveryExperiment(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, errb.String())
	}
	text := out.String()
	if !strings.HasPrefix(text, "available experiments:") {
		t.Fatalf("unexpected -list header:\n%s", text)
	}
	reg := experiments.Registry()
	for _, r := range reg {
		line := false
		for _, l := range strings.Split(text, "\n") {
			if strings.HasPrefix(strings.TrimSpace(l), r.ID+" ") && strings.Contains(l, r.Title) {
				line = true
				break
			}
		}
		if !line {
			t.Errorf("-list output missing %q (%s)", r.ID, r.Title)
		}
	}
	// One line per experiment plus the header: nothing unregistered sneaks in.
	n := 0
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, "  ") {
			n++
		}
	}
	if n != len(reg) {
		t.Fatalf("-list printed %d entries, registry has %d", n, len(reg))
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-run", "nonsense"}, &out, &errb); code != 1 {
		t.Fatalf("unknown id exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Fatalf("missing diagnostic, stderr: %s", errb.String())
	}
}

func TestUnknownFlagFails(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

// TestProfilingFlags runs a tiny experiment with -cpuprofile/-memprofile and
// checks both pprof files land on disk non-empty without perturbing stdout
// (the report must stay byte-identical to an unprofiled run).
func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	base := []string{"-run", "fig3", "-scale", "0.05", "-seed", "3"}

	var plain, errb strings.Builder
	if code := run(base, &plain, &errb); code != 0 {
		t.Fatalf("baseline run exited %d: %s", code, errb.String())
	}
	var profiled strings.Builder
	errb.Reset()
	args := append([]string{"-cpuprofile", cpu, "-memprofile", mem}, base...)
	if code := run(args, &profiled, &errb); code != 0 {
		t.Fatalf("profiled run exited %d: %s", code, errb.String())
	}
	if plain.String() != profiled.String() {
		t.Fatal("profiling flags changed the report output")
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}

	errb.Reset()
	var out strings.Builder
	bad := append([]string{"-cpuprofile", filepath.Join(dir, "no", "dir", "x")}, base...)
	if code := run(bad, &out, &errb); code != 1 {
		t.Fatalf("unwritable -cpuprofile exited %d, want 1", code)
	}
}

// TestBenchSmoke runs the -bench core pipeline at smoke scale and checks
// that the artifact lands on disk and passes the schema gate.
func TestBenchSmoke(t *testing.T) {
	dir := t.TempDir()
	art := filepath.Join(dir, "bench.json")
	var out, errb strings.Builder
	if code := run([]string{"-bench", "core", "-smoke", "-out", art}, &out, &errb); code != 0 {
		t.Fatalf("-bench core -smoke exited %d: %s", code, errb.String())
	}
	f, err := os.Open(art)
	if err != nil {
		t.Fatalf("artifact missing: %v", err)
	}
	defer f.Close()
	res, err := simbench.Read(f)
	if err != nil {
		t.Fatalf("artifact failed schema check: %v", err)
	}
	if !res.Smoke || len(res.Scenarios) != 4 {
		t.Fatalf("unexpected smoke artifact: smoke=%v scenarios=%d", res.Smoke, len(res.Scenarios))
	}
	if !strings.Contains(out.String(), "wrote "+art) {
		t.Fatalf("missing confirmation line: %q", out.String())
	}
}

func TestBenchUnknownFamilyFails(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-bench", "nonsense"}, &out, &errb); code != 1 {
		t.Fatalf("unknown bench family exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown benchmark family") {
		t.Fatalf("missing diagnostic: %s", errb.String())
	}
}

// TestBenchDiff drives -bench diff end to end: a self-diff exits 0, a doctored
// regression exits 1, and bad usage exits 2.
func TestBenchDiff(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	var out, errb strings.Builder
	if code := run([]string{"-bench", "core", "-smoke", "-out", base}, &out, &errb); code != 0 {
		t.Fatalf("bench smoke failed: %s", errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-bench", "diff", base, base}, &out, &errb); code != 0 {
		t.Fatalf("self-diff exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "no regression") {
		t.Fatalf("self-diff output: %q", out.String())
	}

	// Doctor a 50% slowdown into a copy and require a non-zero exit.
	f, err := os.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simbench.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Scenarios {
		res.Scenarios[i].EventsPerSec.Mean *= 0.5
	}
	slow := filepath.Join(dir, "slow.json")
	sf, err := os.Create(slow)
	if err != nil {
		t.Fatal(err)
	}
	if err := simbench.Write(sf, res); err != nil {
		t.Fatal(err)
	}
	sf.Close()

	out.Reset()
	errb.Reset()
	if code := run([]string{"-bench", "diff", base, slow}, &out, &errb); code != 1 {
		t.Fatalf("regressed diff exited %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("regression not marked: %q", out.String())
	}

	// Reversed order is an improvement and passes.
	out.Reset()
	if code := run([]string{"-bench", "diff", slow, base}, &out, &errb); code != 0 {
		t.Fatalf("improvement flagged as regression:\n%s", out.String())
	}

	if code := run([]string{"-bench", "diff", base}, &out, &errb); code != 2 {
		t.Fatal("missing operand must exit 2")
	}
	if code := run([]string{"-bench", "diff", base, filepath.Join(dir, "nope.json")}, &out, &errb); code != 1 {
		t.Fatal("unreadable artifact must exit 1")
	}
}

// TestServeAndProgressInert runs the same cheap experiment with and without
// the live ops plane (-serve on an ephemeral port, -progress heartbeat) and
// requires byte-identical stdout: observation may add stderr diagnostics but
// must never move a report byte.
func TestServeAndProgressInert(t *testing.T) {
	args := []string{"-run", "table2", "-scale", "0.2", "-seed", "11"}
	var plain, plainErr strings.Builder
	if code := run(args, &plain, &plainErr); code != 0 {
		t.Fatalf("plain run exited %d: %s", code, plainErr.String())
	}
	var obs, obsErr strings.Builder
	if code := run(append(args, "-serve", "127.0.0.1:0", "-progress"), &obs, &obsErr); code != 0 {
		t.Fatalf("observed run exited %d: %s", code, obsErr.String())
	}
	if plain.String() != obs.String() {
		t.Fatalf("-serve/-progress changed stdout:\n--- plain ---\n%s\n--- observed ---\n%s",
			plain.String(), obs.String())
	}
	if !strings.Contains(obsErr.String(), "observability: http://") {
		t.Fatalf("bound address missing from stderr: %s", obsErr.String())
	}
	if !strings.Contains(obsErr.String(), "harness: 1/1 trials") {
		t.Fatalf("final heartbeat missing from stderr: %s", obsErr.String())
	}
}

// TestServeBadAddrFails: an unbindable -serve address is a startup error,
// not a silent no-op.
func TestServeBadAddrFails(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-run", "table2", "-serve", "256.256.256.256:1"}, &out, &errb); code != 1 {
		t.Fatalf("bad -serve addr exited %d, want 1 (stderr: %s)", code, errb.String())
	}
}
