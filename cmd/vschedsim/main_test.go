package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenArgs is a small fixed-seed scenario; everything on stdout must be a
// pure function of these flags.
var goldenArgs = []string{
	"-workload", "nginx", "-vcpus", "2", "-share", "0.5", "-vsched",
	"-duration", "2s", "-warmup", "1s", "-seed", "7", "-metrics",
}

// TestMetricsGolden pins the -metrics output (and the whole stdout report)
// for a fixed scenario. Wall-clock noise goes to stderr, so this is an exact
// byte comparison. Regenerate with: go test ./cmd/vschedsim -run Golden -update
func TestMetricsGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(goldenArgs, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Fatalf("stdout diverged from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, stdout.String(), want)
	}
	if !strings.Contains(stdout.String(), "guest.context_switches") {
		t.Fatal("metrics snapshot missing guest counters")
	}
	if !strings.Contains(stdout.String(), "vsched.bvs.calls") {
		t.Fatal("metrics snapshot missing vsched counters")
	}
}

// traceGoldenArgs is a shorter fixed-seed scenario for the engine-swap trace
// golden: long enough to exercise throttling, probing, and bvs decisions,
// short enough to keep the recorded trace under 100KB.
var traceGoldenArgs = []string{
	"-workload", "nginx", "-vcpus", "2", "-share", "0.5", "-vsched",
	"-duration", "500ms", "-warmup", "200ms", "-seed", "7",
}

// TestTraceGolden pins the full Perfetto export of a fixed scenario to a
// golden recorded with the original container/heap event queue. The trace is
// a transcript of every simulation event in fire order, so this is the
// strictest engine-swap gate: a timing-wheel engine that reorders even two
// same-timestamp events diverges here. Do not re-record in an engine PR;
// regenerate (with -update) only when simulation semantics change on
// purpose.
func TestTraceGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	args := append([]string{"-trace", path}, traceGoldenArgs...)
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace export diverged from %s (%d vs %d bytes) — the event engine is firing in a different order", golden, len(got), len(want))
	}
}

// TestTraceFileDeterministic runs the same traced scenario twice and requires
// byte-identical Chrome JSON — the CLI-level version of the exporter's
// determinism contract.
func TestTraceFileDeterministic(t *testing.T) {
	dir := t.TempDir()
	capture := func(name string) []byte {
		path := filepath.Join(dir, name)
		args := append([]string{"-trace", path}, goldenArgs...)
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("run exited %d: %s", code, stderr.String())
		}
		if !strings.Contains(stderr.String(), "vtrace:") {
			t.Fatalf("no trace summary on stderr:\n%s", stderr.String())
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := capture("a.json"), capture("b.json")
	if len(a) == 0 {
		t.Fatal("empty trace file")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("trace files differ across identical runs")
	}
	for _, want := range []string{`"cat":"host"`, `"cat":"guest"`, `"cat":"vsched"`, `"displayTimeUnit":"ms"`} {
		if !bytes.Contains(a, []byte(want)) {
			t.Fatalf("trace missing %s", want)
		}
	}
}

// TestAttribFlag runs the golden scenario with -attrib: stdout gains a
// deterministic per-cause breakdown whose shares come from a conserved
// reconstruction (the run exits non-zero otherwise), and -trace grows an
// "attribution" process with per-cause span args.
func TestAttribFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "attrib.json")
	args := append([]string{"-attrib", "-trace", path}, goldenArgs...)
	capture := func() string {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("run exited %d: %s", code, stderr.String())
		}
		return stdout.String()
	}
	a := capture()
	if a != capture() {
		t.Fatal("-attrib output diverged across identical runs")
	}
	for _, want := range []string{"latprof vm:", "steal-wait", "run", "p95 ms"} {
		if !strings.Contains(a, want) {
			t.Fatalf("attribution report missing %q:\n%s", want, a)
		}
	}
	trace, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"attribution"`, `"steal_wait_ns"`, `"wall_ns"`} {
		if !bytes.Contains(trace, []byte(want)) {
			t.Fatalf("trace missing attribution track marker %s", want)
		}
	}
	// The recorded event stream must be unchanged by the tap: strip the
	// attribution process and the remainder equals a -attrib-free trace.
	plain := filepath.Join(dir, "plain.json")
	var stdout, stderr bytes.Buffer
	if code := run(append([]string{"-trace", plain}, goldenArgs...), &stdout, &stderr); code != 0 {
		t.Fatalf("plain traced run exited %d: %s", code, stderr.String())
	}
	plainTrace, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(trace, plainTrace[:bytes.LastIndex(plainTrace, []byte("\n],"))]) {
		t.Fatal("-attrib altered the recorded event stream (want: pure append of the attribution track)")
	}
}

// TestUnknownFlagFails checks flag errors exit non-zero without touching
// stdout.
func TestUnknownFlagFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code == 0 {
		t.Fatal("unknown flag accepted")
	}
	if stdout.Len() != 0 {
		t.Fatalf("error path wrote to stdout: %s", stdout.String())
	}
}

// TestTelemetryFlag: -telemetry must print a deterministic sparkline summary
// on stdout (byte-identical across reruns), keep wall-clock series off
// stdout, and add counter tracks to the -trace file without breaking it.
func TestTelemetryFlag(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	args := []string{
		"-workload", "nginx", "-vcpus", "2", "-share", "0.5", "-vsched",
		"-duration", "2s", "-warmup", "1s", "-seed", "7",
		"-telemetry", "-trace", trace,
	}
	var out1, out2, errb bytes.Buffer
	if code := run(args, &out1, &errb); code != 0 {
		t.Fatalf("run exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out1.String(), "telemetry:") {
		t.Fatalf("no telemetry summary on stdout:\n%s", out1.String())
	}
	if !strings.Contains(out1.String(), "sched.ctxsw") && !strings.Contains(out1.String(), "sim.fired") {
		t.Fatalf("expected sampled series in summary:\n%s", out1.String())
	}
	if strings.Contains(out1.String(), "self.events_per_sec") {
		t.Fatal("volatile wall-clock series leaked onto stdout")
	}
	if !strings.Contains(errb.String(), "self.events_per_sec") {
		t.Fatal("volatile series summary missing from stderr")
	}

	errb.Reset()
	if code := run(args, &out2, &errb); code != 0 {
		t.Fatalf("rerun exited %d: %s", code, errb.String())
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatal("-telemetry stdout is not deterministic across reruns")
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace with counter tracks is not valid JSON: %v", err)
	}
	counters := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "C" {
			counters++
		}
	}
	if counters == 0 {
		t.Fatal("trace has no counter events despite -telemetry")
	}
}

// TestStallFlag: an injected host stall must cost throughput but not wedge
// the run — the vCPUs wake after the window and the scenario completes.
func TestStallFlag(t *testing.T) {
	base := []string{"-workload", "nginx", "-vcpus", "2",
		"-duration", "2s", "-warmup", "500ms", "-seed", "7"}
	runOps := func(extra ...string) string {
		var stdout, stderr bytes.Buffer
		if code := run(append(append([]string{}, base...), extra...), &stdout, &stderr); code != 0 {
			t.Fatalf("run exited %d: %s", code, stderr.String())
		}
		for _, line := range strings.Split(stdout.String(), "\n") {
			if strings.HasPrefix(line, "ops=") {
				return line
			}
		}
		t.Fatalf("no ops line in output:\n%s", stdout.String())
		return ""
	}
	clean := runOps()
	stalled := runOps("-stall", "1s")
	if clean == stalled {
		t.Fatalf("stall did not change throughput: %s", stalled)
	}
	var cleanOps, stalledOps int
	fmt.Sscanf(clean, "ops=%d", &cleanOps)
	fmt.Sscanf(stalled, "ops=%d", &stalledOps)
	if stalledOps <= 0 || stalledOps >= cleanOps {
		t.Fatalf("stalled ops %d, want in (0, %d)", stalledOps, cleanOps)
	}
	if again := runOps("-stall", "1s"); again != stalled {
		t.Fatalf("stalled run not deterministic: %q vs %q", again, stalled)
	}
}

// TestServeStdoutInert runs the golden scenario with -serve on an ephemeral
// port and requires stdout to match the plain run byte for byte: the ops
// plane publishes at run-loop safepoints and schedules nothing on the
// engine, so even the engine self-census telemetry is unchanged.
func TestServeStdoutInert(t *testing.T) {
	plainTelem := append(append([]string{}, goldenArgs...), "-telemetry")
	var plain2, plainErr bytes.Buffer
	if code := run(plainTelem, &plain2, &plainErr); code != 0 {
		t.Fatalf("plain telemetry run exited %d: %s", code, plainErr.String())
	}
	served := append(append([]string{}, plainTelem...), "-serve", "127.0.0.1:0")
	var obs, obsErr bytes.Buffer
	if code := run(served, &obs, &obsErr); code != 0 {
		t.Fatalf("served run exited %d: %s", code, obsErr.String())
	}
	if !bytes.Equal(plain2.Bytes(), obs.Bytes()) {
		t.Fatalf("-serve changed stdout:\n--- plain ---\n%s\n--- served ---\n%s",
			plain2.String(), obs.String())
	}
	if !strings.Contains(obsErr.String(), "observability: http://") {
		t.Fatalf("bound address missing from stderr: %s", obsErr.String())
	}
}
