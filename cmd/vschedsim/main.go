// Command vschedsim runs a single custom scenario: a VM on a configurable
// host with optional co-tenant contention, a catalogued workload, and any
// vSched feature combination, reporting throughput/latency and scheduler
// counters.
//
// Examples:
//
//	vschedsim -workload nginx -vcpus 8 -share 0.5 -vsched
//	vschedsim -workload masstree -vcpus 16 -share 0.5 -latency 8ms -features vcap,vact,vtop,bvs
//	vschedsim -workload canneal -threads 4 -vcpus 16 -share 0.5 -features vcap,vact,ivh -duration 30s
//	vschedsim -workload nginx -vcpus 4 -share 0.5 -vsched -trace out.json   # open in Perfetto
//	vschedsim -workload nginx -vcpus 4 -vsched -metrics                     # registry snapshot
//	vschedsim -workload nginx -vcpus 4 -vsched -serve 127.0.0.1:9137        # live /metrics + progress stream
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"vsched"
	"vsched/internal/cloudgen"
	"vsched/internal/faults"
	"vsched/internal/latprof"
	"vsched/internal/metrics"
	"vsched/internal/obshttp"
	"vsched/internal/profiling"
	"vsched/internal/progress"
	"vsched/internal/telemetry"
	"vsched/internal/vtrace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected: args without argv[0], and the
// two output streams. Scenario results go to stdout; diagnostics, the trace
// summary, and the wall-time line go to stderr, so stdout is a deterministic
// function of the flags and seed.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vschedsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workloadName = fs.String("workload", "nginx", "catalogued benchmark (see -list)")
		cloudVM      = fs.Bool("cloudvm", false, "draw the VM shape (vCPU count, tenant class) from the cloudgen cloud-trace distributions with -seed; overrides -vcpus")
		list         = fs.Bool("list", false, "list workloads and exit")
		vcpus        = fs.Int("vcpus", 8, "vCPU count (pinned 1:1 on threads)")
		threads      = fs.Int("threads", 0, "workload threads (0 = default)")
		sockets      = fs.Int("sockets", 1, "host sockets")
		cores        = fs.Int("cores", 0, "cores per socket (0 = vcpus)")
		smt          = fs.Bool("smt", false, "enable SMT/turbo speed effects")
		share        = fs.Float64("share", 1.0, "fair share each vCPU gets of its core (1.0 = dedicated)")
		latency      = fs.Duration("latency", 0, "target vCPU latency via host granularities (0 = default)")
		vschedOn     = fs.Bool("vsched", false, "enable full vSched")
		featuresFlag = fs.String("features", "", "comma-separated subset: vcap,vact,vtop,bvs,ivh,rwc")
		policy       = fs.String("policy", "cfs", "guest scheduling policy: cfs or eevdf")
		duration     = fs.Duration("duration", 20*time.Second, "virtual measurement time")
		warmup       = fs.Duration("warmup", 5*time.Second, "virtual warmup time")
		seed         = fs.Int64("seed", 1, "simulation seed")
		watch        = fs.Bool("watch", false, "print a per-second top-style vCPU table during the run")
		timeline     = fs.Bool("timeline", false, "print KernelShark-style per-vCPU activity strips at the end")
		tracePath    = fs.String("trace", "", "write a Chrome/Perfetto trace of the whole run to this file")
		metricsOut   = fs.Bool("metrics", false, "print the VM metrics registry snapshot at the end")
		attrib       = fs.Bool("attrib", false, "print a per-cause latency attribution of the measurement window (adds an attribution track to -trace)")
		telem        = fs.Bool("telemetry", false, "sample a flight recorder over the run: sparkline summary at the end, counter tracks in -trace")
		stallDur     = fs.Duration("stall", 0, "inject a transient host stall of this length (freezes every vCPU; shows up as steal and in -trace)")
		stallAt      = fs.Duration("stallat", 0, "virtual-time offset of the injected stall (0 = midway through the measurement window)")
		cpuProf      = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf      = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
		serveAddr    = fs.String("serve", "", "serve live observability on this address while the scenario runs: Prometheus /metrics, /runs/vschedsim/events, pprof (e.g. 127.0.0.1:9137, or :0 for an ephemeral port)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "profiling:", err)
		}
	}()

	if *list {
		fmt.Fprintln(stdout, "workloads:", strings.Join(vsched.WorkloadNames(), ", "))
		return 0
	}

	if *cloudVM {
		// One draw from the same heavy-tailed size / bimodal class model the
		// fleetscale experiment runs at 100k-VM scale: a quick way to ask
		// "what does a typical (or tail) cloud VM look like on this config?".
		gcfg := cloudgen.DefaultConfig()
		gcfg.MaxVMs = 1
		tr := cloudgen.Generate(*seed, gcfg)
		v := tr.VMs[0]
		*vcpus = v.VCPUs
		fmt.Fprintf(stderr, "cloudvm draw (seed %d): %s, %d vCPUs, per-vCPU demand %.2f\n",
			*seed, v.Class, v.VCPUs, v.Demand)
	}

	nCores := *cores
	if nCores == 0 {
		nCores = *vcpus
	}
	cl := vsched.NewCluster(vsched.ClusterConfig{
		Seed: *seed, Sockets: *sockets, CoresPerSocket: nCores, SMT: *smt,
	})
	ids := make([]int, *vcpus)
	for i := range ids {
		ids[i] = i
	}
	gp := vsched.DefaultGuestParams()
	switch strings.ToLower(*policy) {
	case "cfs":
	case "eevdf":
		gp.Policy = vsched.PolicyEEVDF
	default:
		fmt.Fprintf(stderr, "unknown -policy %q (want cfs or eevdf)\n", *policy)
		return 1
	}
	vm := cl.NewVMWithParams("vm", ids, gp)

	// Tracing taps every layer: the host observer sees entity state changes,
	// and the VM tracer carries guest context switches plus vSched decisions.
	var tracer *vtrace.Tracer
	if *tracePath != "" {
		tracer = vtrace.New(0)
		vtrace.AttachHost(tracer, cl.Host())
		vm.SetTracer(tracer)
	}

	// Host contention per the requested share and latency.
	if *share < 1.0 {
		w := int64(float64(vsched.DefaultWeight) * (1 - *share) / *share)
		for i := 0; i < *vcpus; i++ {
			cl.AddStressor(i, w)
		}
	}
	if *latency > 0 {
		for i := 0; i < *vcpus; i++ {
			cl.SetVCPULatency(i, vsched.Duration(latency.Nanoseconds()))
		}
	}

	var sched *vsched.VSched
	feats := vsched.Features{}
	if *vschedOn {
		feats = vsched.AllFeatures()
	}
	for _, f := range strings.Split(*featuresFlag, ",") {
		switch strings.TrimSpace(strings.ToLower(f)) {
		case "":
		case "vcap":
			feats.Vcap = true
		case "vact":
			feats.Vact = true
		case "vtop":
			feats.Vtop = true
		case "bvs":
			feats.BVS = true
		case "ivh":
			feats.IVH = true
		case "rwc":
			feats.RWC = true
		default:
			fmt.Fprintf(stderr, "unknown feature %q\n", f)
			return 1
		}
	}
	if feats != (vsched.Features{}) {
		sched = cl.EnableVSched(vm, feats)
	}

	var timelines []*vtrace.Timeline
	if *timeline {
		for i := 0; i < vm.NumVCPUs(); i++ {
			timelines = append(timelines, vtrace.Attach(vm.VCPU(i).Entity()))
		}
	}

	// The flight recorder samples the VM registry plus the engine's own
	// event-queue census on the sim clock; wall-clock throughput rides along
	// as volatile series that stay out of the deterministic summary.
	var rec *telemetry.Recorder
	if *telem {
		rec = telemetry.New(cl.Engine(), telemetry.Config{})
		rec.AddSource("", telemetry.RegistrySource(vm.Metrics()))
		rec.AddSource("", &telemetry.SelfSource{Eng: cl.Engine(), Tracer: tracer})
		rec.AddVolatileSource("", &telemetry.WallSource{Eng: cl.Engine()})
		rec.Start()
	}

	inst := cl.Workload(vm, sched, *workloadName, *threads)
	inst.Start()

	warm := vsched.Duration(warmup.Nanoseconds())
	window := vsched.Duration(duration.Nanoseconds())

	// The live ops plane: when -serve is set, the run loop below advances the
	// engine in one-virtual-second chunks and publishes a progress event plus
	// a metrics mirror at each chunk boundary. That boundary is an existing
	// safepoint — Run(a) then Run(b) fires exactly the events Run(a+b) would,
	// in the same order — so observation schedules nothing on the engine and
	// the whole of stdout (including the engine's self-census telemetry) is
	// byte-identical with and without -serve. Census gauges live in their own
	// registry for the same reason, and the bound address goes to stderr.
	var obsPublish func()
	obsFinish := func() {}
	if *serveAddr != "" {
		osrv := obshttp.New(obshttp.Options{})
		bound, err := osrv.ListenAndServe(*serveAddr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "observability: http://%s/metrics, /runs/vschedsim/events\n", bound)
		obsRun := osrv.Register("vschedsim")
		pub := obsRun.Publisher()
		label := pub.Label(*workloadName)
		eng := cl.Engine()
		total := warm + window
		obsReg := metrics.NewRegistry()
		mirror := func() {
			pub.PublishMirror(func(add func(fam progress.Family, name string, v float64)) {
				vm.Metrics().VisitNumeric(func(name string, v float64) { add(progress.FamMetric, name, v) })
				if rec != nil {
					rec.UpdateCensus(obsReg)
					for _, s := range rec.Series(false) {
						add(progress.FamTelemetry, s.Name, s.Last().V)
					}
				}
				tracer.UpdateCensus(obsReg)
				obsReg.VisitNumeric(func(name string, v float64) { add(progress.FamSelf, name, v) })
				ws := eng.WheelStats()
				add(progress.FamSelf, "sim.fired", float64(eng.Fired()))
				add(progress.FamSelf, "sim.pending", float64(ws.Pending))
				add(progress.FamSelf, "sim.wheel.resident", float64(ws.WheelResident))
			})
		}
		pub.Publish(progress.Event{Kind: progress.KindRunStart, Label: label, Total: int64(total)})
		mirror()
		var epoch int64
		obsPublish = func() {
			epoch++
			pub.Publish(progress.Event{
				Kind: progress.KindEpoch, Label: label,
				At: int64(eng.Now()), Epoch: epoch,
				Done: int64(inst.Ops()), Total: int64(total),
			})
			mirror()
		}
		obsFinish = func() {
			pub.Publish(progress.Event{
				Kind: progress.KindRunDone, Label: label,
				At: int64(eng.Now()), Epoch: epoch, Done: int64(inst.Ops()), Total: int64(total),
			})
			mirror()
			obsRun.Finish()
			// Give attached stream consumers a beat to drain their terminal
			// record before the listener dies with the process.
			time.Sleep(100 * time.Millisecond)
			osrv.Close()
		}
	}
	defer obsFinish()
	// advance is the run loop: whole-stretch when unobserved, chunked to
	// per-second publish safepoints when -serve is live. Identical either way.
	advance := func(d vsched.Duration) {
		if obsPublish == nil {
			cl.RunFor(d)
			return
		}
		for d > 0 {
			step := vsched.Duration(vsched.Second)
			if step > d {
				step = d
			}
			cl.RunFor(step)
			d -= step
			obsPublish()
		}
	}

	// The single-host cousin of the fleet fault plane (internal/faults): a
	// transient stall blocks every vCPU entity at a chosen instant and wakes
	// them after, so the guest sees a hard steal burst — handy for watching
	// how the probers and bvs re-converge after degraded-signal windows.
	if *stallDur > 0 {
		at := vsched.Duration(stallAt.Nanoseconds())
		if at <= 0 {
			at = warm + window/2
		}
		d := vsched.Duration(stallDur.Nanoseconds())
		eng := cl.Engine()
		eng.After(at, func() {
			if tracer != nil {
				tracer.Emit(eng.Now(), vtrace.KindHostFault, "host", int64(faults.Stall), int64(d), 0)
			}
			for i := 0; i < vm.NumVCPUs(); i++ {
				vm.VCPU(i).Entity().Block()
			}
			eng.After(d, func() {
				for i := 0; i < vm.NumVCPUs(); i++ {
					vm.VCPU(i).Entity().Wake()
				}
				if tracer != nil {
					tracer.Emit(eng.Now(), vtrace.KindHostRecover, "host", int64(faults.Stall), 0, 0)
				}
			})
		})
		fmt.Fprintf(stderr, "stall armed: %v at t=%v\n", *stallDur, time.Duration(at))
	}
	if *watch {
		watchLoop(stdout, cl, vm, sched, warm+window)
	}
	advance(warm)

	// Latency attribution taps the event stream for the measurement window
	// only, so warmup does not dilute the breakdown. The host gets an extra
	// observer (host observers stack) and the VM tracer becomes a tee that
	// keeps feeding the -trace ring, so the recorded trace is unchanged.
	var prof *latprof.Profiler
	if *attrib {
		prof = latprof.New(latprof.Config{VM: "vm", NominalSpeed: cl.Host().Config().BaseSpeed})
		vtrace.AttachHost(vtrace.NewObserver(prof.Observe), cl.Host())
		ring := tracer
		vm.SetTracer(vtrace.NewObserver(func(ev vtrace.Event) {
			prof.Observe(ev)
			ring.Emit(ev.At, ev.Kind, ev.Subject, ev.A0, ev.A1, ev.A2)
		}))
	}
	var srv *vsched.Server
	if s, ok := inst.(*vsched.Server); ok {
		srv = s
		srv.ResetStats()
	}
	opsBefore := inst.Ops()
	start := time.Now()
	advance(window)
	wall := time.Since(start)

	ops := inst.Ops() - opsBefore
	fmt.Fprintf(stdout, "workload=%s vcpus=%d share=%.2f features=%+v\n", *workloadName, *vcpus, *share, feats)
	fmt.Fprintf(stdout, "ops=%d (%.1f/s virtual)\n", ops, float64(ops)/window.Seconds())
	if srv != nil {
		fmt.Fprintf(stdout, "latency p50=%.3fms p95=%.3fms p99=%.3fms (queue p95=%.3fms service p95=%.3fms)\n",
			float64(srv.E2E().P50())/1e6, float64(srv.E2E().P95())/1e6, float64(srv.E2E().P99())/1e6,
			float64(srv.Queue().P95())/1e6, float64(srv.Service().P95())/1e6)
	}
	st := vm.Stats()
	fmt.Fprintf(stdout, "sched: ctxsw=%d wakeups=%d migrations=%d ipis=%d (cross-socket %d)\n",
		st.ContextSwitches, st.Wakeups, st.Migrations, st.IPIs, st.CrossIPIs)
	fmt.Fprintf(stdout, "cycles=%.3g (cps=%.3g/s)\n", vm.TotalCycles(), vm.TotalCycles()/window.Seconds())
	if sched != nil {
		ivh := sched.IVHStats()
		calls, hits := sched.BVSStats()
		fmt.Fprintf(stdout, "vsched: ivh=%+v bvs=%d/%d vtop full=%v validate=%v\n",
			ivh, hits, calls, sched.Vtop().LastFullTime(), sched.Vtop().LastValidateTime())
		caps := make([]string, vm.NumVCPUs())
		for i := range caps {
			caps[i] = fmt.Sprintf("%d", vm.VCPU(i).Capacity())
		}
		fmt.Fprintf(stdout, "probed capacities: %s\n", strings.Join(caps, " "))
	}
	if *timeline {
		// Last 80ms of the run, one strip per vCPU:
		// '#' running, '.' preempted, 't' throttled, ' ' halted.
		to := cl.Now()
		from := to - vsched.Time(80*vsched.Millisecond)
		fmt.Fprintln(stdout, "vCPU activity, final 80ms:")
		for i, tl := range timelines {
			fmt.Fprintf(stdout, "  v%-3d |%s|  running %2.0f%%\n", i,
				tl.Render(72, from, to), 100*tl.RunningFraction(from, to))
		}
	}
	if *metricsOut {
		fmt.Fprintln(stdout, "metrics:")
		fmt.Fprint(stdout, vm.Metrics().Snapshot().String())
	}
	if rec != nil {
		rec.Stop()
		// Deterministic series to stdout (a pure function of flags + seed);
		// wall-clock series to stderr with the other timing diagnostics.
		fmt.Fprint(stdout, rec.Snapshot(false).Summary())
		full := rec.Snapshot(true)
		var vol telemetry.Snapshot
		vol.IntervalNS, vol.Samples = full.IntervalNS, full.Samples
		for _, s := range full.Series {
			if s.Volatile {
				vol.Series = append(vol.Series, s)
			}
		}
		if len(vol.Series) > 0 {
			fmt.Fprint(stderr, vol.Summary())
		}
	}
	var extraTracks []vtrace.SpanTrack
	if prof != nil {
		p := prof.Finish(cl.Now())
		if err := p.CheckConservation(); err != nil {
			fmt.Fprintf(stderr, "attribution: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, p.String())
		extraTracks = append(extraTracks, p.ChromeTrack())
	}
	if tracer != nil {
		var counters []vtrace.CounterTrack
		if rec != nil {
			counters = rec.CounterTracks(true)
		}
		if err := writeTrace(*tracePath, tracer, extraTracks, counters); err != nil {
			fmt.Fprintf(stderr, "writing trace: %v\n", err)
			return 1
		}
		fmt.Fprint(stderr, tracer.Summary())
		fmt.Fprintf(stderr, "trace written to %s (load in https://ui.perfetto.dev)\n", *tracePath)
	}
	fmt.Fprintf(stderr, "(simulated %v in %v wall time)\n", duration, wall.Round(time.Millisecond))
	return 0
}

func writeTrace(path string, tr *vtrace.Tracer, extra []vtrace.SpanTrack, counters []vtrace.CounterTrack) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTracks(f, extra, counters); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// watchLoop schedules a per-virtual-second snapshot of every vCPU: probed
// capacity and latency next to the physical truth (host thread, entity
// state), plus guest queue depth — a "top" for the simulation.
func watchLoop(w io.Writer, cl *vsched.Cluster, vm *vsched.VM, sched *vsched.VSched, until vsched.Duration) {
	eng := cl.Engine()
	var snap func()
	snap = func() {
		fmt.Fprintf(w, "--- t=%v ---\n", eng.Now())
		fmt.Fprintf(w, "%-5s %-9s %-11s %-8s %-7s %-10s %s\n",
			"vcpu", "probedCap", "probedLat", "rqlen", "curr", "entState", "thread(skt/core/slot)")
		for i := 0; i < vm.NumVCPUs(); i++ {
			v := vm.VCPU(i)
			curr := "-"
			if c := v.Curr(); c != nil {
				curr = c.Name()
				if len(curr) > 7 {
					curr = curr[:7]
				}
			}
			th := v.Entity().Thread()
			fmt.Fprintf(w, "%-5d %-9d %-11v %-8d %-7s %-10v %d/%d/%d\n",
				i, v.Capacity(), v.Latency(), v.RunqueueLen(), curr,
				v.Entity().State(), th.Socket(), th.Core(), th.Slot())
		}
		if sched != nil {
			b := sched.Vtop().Belief()
			var stacks []string
			for _, g := range b.StackGroups() {
				stacks = append(stacks, fmt.Sprint(g))
			}
			if len(stacks) > 0 {
				fmt.Fprintln(w, "stacked groups:", strings.Join(stacks, " "))
			}
		}
		if eng.Now() < vsched.Time(until) {
			eng.After(vsched.Second, snap)
		}
	}
	eng.After(vsched.Second, snap)
}
