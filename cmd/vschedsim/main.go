// Command vschedsim runs a single custom scenario: a VM on a configurable
// host with optional co-tenant contention, a catalogued workload, and any
// vSched feature combination, reporting throughput/latency and scheduler
// counters.
//
// Examples:
//
//	vschedsim -workload nginx -vcpus 8 -share 0.5 -vsched
//	vschedsim -workload masstree -vcpus 16 -share 0.5 -latency 8ms -features vcap,vact,vtop,bvs
//	vschedsim -workload canneal -threads 4 -vcpus 16 -share 0.5 -features vcap,vact,ivh -duration 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vsched"
	"vsched/internal/trace"
)

func main() {
	var (
		workloadName = flag.String("workload", "nginx", "catalogued benchmark (see -list)")
		list         = flag.Bool("list", false, "list workloads and exit")
		vcpus        = flag.Int("vcpus", 8, "vCPU count (pinned 1:1 on threads)")
		threads      = flag.Int("threads", 0, "workload threads (0 = default)")
		sockets      = flag.Int("sockets", 1, "host sockets")
		cores        = flag.Int("cores", 0, "cores per socket (0 = vcpus)")
		smt          = flag.Bool("smt", false, "enable SMT/turbo speed effects")
		share        = flag.Float64("share", 1.0, "fair share each vCPU gets of its core (1.0 = dedicated)")
		latency      = flag.Duration("latency", 0, "target vCPU latency via host granularities (0 = default)")
		vschedOn     = flag.Bool("vsched", false, "enable full vSched")
		featuresFlag = flag.String("features", "", "comma-separated subset: vcap,vact,vtop,bvs,ivh,rwc")
		policy       = flag.String("policy", "cfs", "guest scheduling policy: cfs or eevdf")
		duration     = flag.Duration("duration", 20*time.Second, "virtual measurement time")
		warmup       = flag.Duration("warmup", 5*time.Second, "virtual warmup time")
		seed         = flag.Int64("seed", 1, "simulation seed")
		watch        = flag.Bool("watch", false, "print a per-second top-style vCPU table during the run")
		timeline     = flag.Bool("timeline", false, "print KernelShark-style per-vCPU activity strips at the end")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:", strings.Join(vsched.WorkloadNames(), ", "))
		return
	}

	nCores := *cores
	if nCores == 0 {
		nCores = *vcpus
	}
	cl := vsched.NewCluster(vsched.ClusterConfig{
		Seed: *seed, Sockets: *sockets, CoresPerSocket: nCores, SMT: *smt,
	})
	ids := make([]int, *vcpus)
	for i := range ids {
		ids[i] = i
	}
	gp := vsched.DefaultGuestParams()
	switch strings.ToLower(*policy) {
	case "cfs":
	case "eevdf":
		gp.Policy = vsched.PolicyEEVDF
	default:
		fmt.Fprintf(os.Stderr, "unknown -policy %q (want cfs or eevdf)\n", *policy)
		os.Exit(1)
	}
	vm := cl.NewVMWithParams("vm", ids, gp)

	// Host contention per the requested share and latency.
	if *share < 1.0 {
		w := int64(float64(vsched.DefaultWeight) * (1 - *share) / *share)
		for i := 0; i < *vcpus; i++ {
			cl.AddStressor(i, w)
		}
	}
	if *latency > 0 {
		for i := 0; i < *vcpus; i++ {
			cl.SetVCPULatency(i, vsched.Duration(latency.Nanoseconds()))
		}
	}

	var sched *vsched.VSched
	feats := vsched.Features{}
	if *vschedOn {
		feats = vsched.AllFeatures()
	}
	for _, f := range strings.Split(*featuresFlag, ",") {
		switch strings.TrimSpace(strings.ToLower(f)) {
		case "":
		case "vcap":
			feats.Vcap = true
		case "vact":
			feats.Vact = true
		case "vtop":
			feats.Vtop = true
		case "bvs":
			feats.BVS = true
		case "ivh":
			feats.IVH = true
		case "rwc":
			feats.RWC = true
		default:
			fmt.Fprintf(os.Stderr, "unknown feature %q\n", f)
			os.Exit(1)
		}
	}
	if feats != (vsched.Features{}) {
		sched = cl.EnableVSched(vm, feats)
	}

	var timelines []*trace.Timeline
	if *timeline {
		for i := 0; i < vm.NumVCPUs(); i++ {
			timelines = append(timelines, trace.Attach(vm.VCPU(i).Entity()))
		}
	}

	inst := cl.Workload(vm, sched, *workloadName, *threads)
	inst.Start()

	warm := vsched.Duration(warmup.Nanoseconds())
	window := vsched.Duration(duration.Nanoseconds())
	if *watch {
		watchLoop(cl, vm, sched, warm+window)
	}
	cl.RunFor(warm)
	var srv *vsched.Server
	if s, ok := inst.(*vsched.Server); ok {
		srv = s
		srv.ResetStats()
	}
	opsBefore := inst.Ops()
	start := time.Now()
	cl.RunFor(window)
	wall := time.Since(start)

	ops := inst.Ops() - opsBefore
	fmt.Printf("workload=%s vcpus=%d share=%.2f features=%+v\n", *workloadName, *vcpus, *share, feats)
	fmt.Printf("ops=%d (%.1f/s virtual)\n", ops, float64(ops)/window.Seconds())
	if srv != nil {
		fmt.Printf("latency p50=%.3fms p95=%.3fms p99=%.3fms (queue p95=%.3fms service p95=%.3fms)\n",
			float64(srv.E2E().P50())/1e6, float64(srv.E2E().P95())/1e6, float64(srv.E2E().P99())/1e6,
			float64(srv.Queue().P95())/1e6, float64(srv.Service().P95())/1e6)
	}
	st := vm.Stats()
	fmt.Printf("sched: ctxsw=%d wakeups=%d migrations=%d ipis=%d (cross-socket %d)\n",
		st.ContextSwitches, st.Wakeups, st.Migrations, st.IPIs, st.CrossIPIs)
	fmt.Printf("cycles=%.3g (cps=%.3g/s)\n", vm.TotalCycles(), vm.TotalCycles()/window.Seconds())
	if sched != nil {
		ivh := sched.IVHStats()
		calls, hits := sched.BVSStats()
		fmt.Printf("vsched: ivh=%+v bvs=%d/%d vtop full=%v validate=%v\n",
			ivh, hits, calls, sched.Vtop().LastFullTime(), sched.Vtop().LastValidateTime())
		caps := make([]string, vm.NumVCPUs())
		for i := range caps {
			caps[i] = fmt.Sprintf("%d", vm.VCPU(i).Capacity())
		}
		fmt.Printf("probed capacities: %s\n", strings.Join(caps, " "))
	}
	if *timeline {
		// Last 80ms of the run, one strip per vCPU:
		// '#' running, '.' preempted, 't' throttled, ' ' halted.
		to := cl.Now()
		from := to - vsched.Time(80*vsched.Millisecond)
		fmt.Println("vCPU activity, final 80ms:")
		for i, tl := range timelines {
			fmt.Printf("  v%-3d |%s|  running %2.0f%%\n", i,
				tl.Render(72, from, to), 100*tl.RunningFraction(from, to))
		}
	}
	fmt.Printf("(simulated %v in %v wall time)\n", duration, wall.Round(time.Millisecond))
}

// watchLoop schedules a per-virtual-second snapshot of every vCPU: probed
// capacity and latency next to the physical truth (host thread, entity
// state), plus guest queue depth — a "top" for the simulation.
func watchLoop(cl *vsched.Cluster, vm *vsched.VM, sched *vsched.VSched, until vsched.Duration) {
	eng := cl.Engine()
	var snap func()
	snap = func() {
		fmt.Printf("--- t=%v ---\n", eng.Now())
		fmt.Printf("%-5s %-9s %-11s %-8s %-7s %-10s %s\n",
			"vcpu", "probedCap", "probedLat", "rqlen", "curr", "entState", "thread(skt/core/slot)")
		for i := 0; i < vm.NumVCPUs(); i++ {
			v := vm.VCPU(i)
			curr := "-"
			if c := v.Curr(); c != nil {
				curr = c.Name()
				if len(curr) > 7 {
					curr = curr[:7]
				}
			}
			th := v.Entity().Thread()
			fmt.Printf("%-5d %-9d %-11v %-8d %-7s %-10v %d/%d/%d\n",
				i, v.Capacity(), v.Latency(), v.RunqueueLen(), curr,
				v.Entity().State(), th.Socket(), th.Core(), th.Slot())
		}
		if sched != nil {
			b := sched.Vtop().Belief()
			var stacks []string
			for _, g := range b.StackGroups() {
				stacks = append(stacks, fmt.Sprint(g))
			}
			if len(stacks) > 0 {
				fmt.Println("stacked groups:", strings.Join(stacks, " "))
			}
		}
		if eng.Now() < vsched.Time(until) {
			eng.After(vsched.Second, snap)
		}
	}
	eng.After(vsched.Second, snap)
}
