#!/bin/sh
# ci.sh — the checks a change must pass before merging.
#
#   ./ci.sh         # vet + build + full tests + race pass on concurrent packages
#   ./ci.sh quick   # same, but -short tests (skips the full-registry suites)
#
# The race pass covers the packages that actually run goroutines: the
# parallel harness and, through it, the experiment/simulator substrate it
# drives concurrently (every package in the test binary is instrumented).
set -eu

short=""
if [ "${1:-}" = "quick" ]; then
    short="-short"
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test $short ./..."
go test $short ./...

echo "== go test -race -short ./internal/harness/... ./internal/sim/... ./internal/metrics/..."
go test -race -short ./internal/harness/... ./internal/sim/... ./internal/metrics/...

echo "CI OK"
