#!/bin/sh
# ci.sh — the checks a change must pass before merging.
#
#   ./ci.sh         # gofmt + vet + build + full tests + race pass + bench smoke
#   ./ci.sh quick   # same, but -short tests (skips the full-registry suites)
#
# The race pass covers the packages that actually run goroutines: the
# parallel harness and, through it, the experiment/simulator substrate it
# drives concurrently (every package in the test binary is instrumented).
set -eu

short=""
if [ "${1:-}" = "quick" ]; then
    short="-short"
fi

echo "== gofmt -l"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test $short ./..."
go test $short ./...

echo "== go test -race -short ./internal/harness/... ./internal/sim/... ./internal/metrics/... ./internal/vtrace/... ./internal/fleet/..."
go test -race -short ./internal/harness/... ./internal/sim/... ./internal/metrics/... ./internal/vtrace/... ./internal/fleet/...

# Examples smoke: every program under examples/ must not just compile but
# run to completion — they are the documented entry points.
echo "== examples smoke"
for d in examples/*/; do
    echo "-- go run ./$d"
    go run "./$d" > /dev/null
done

# Tracing-overhead smoke: the disabled path must stay allocation-free and the
# enabled path cheap. TestEmitAllocatesNothing enforces zero allocs; the
# benchmarks print the per-event cost so regressions are visible in CI logs.
echo "== tracer overhead smoke"
go test -run '^$' -bench 'BenchmarkEmit' -benchtime 1000x ./internal/vtrace/

echo "CI OK"
