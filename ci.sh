#!/bin/sh
# ci.sh — the checks a change must pass before merging.
#
#   ./ci.sh         # gofmt + vet + build + full tests + race pass + bench smoke
#   ./ci.sh quick   # same, but -short tests (skips the full-registry suites)
#
# The race pass covers the packages that actually run goroutines: the
# parallel harness and, through it, the experiment/simulator substrate it
# drives concurrently (every package in the test binary is instrumented).
set -eu

short=""
if [ "${1:-}" = "quick" ]; then
    short="-short"
fi

echo "== gofmt -l"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test $short ./..."
go test $short ./...

echo "== go test -race -short ./internal/harness/... ./internal/sim/... ./internal/metrics/... ./internal/vtrace/... ./internal/fleet/... ./internal/faults/... ./internal/cloudgen/... ./internal/latprof/... ./internal/telemetry/... ./internal/progress/... ./internal/obshttp/..."
go test -race -short ./internal/harness/... ./internal/sim/... ./internal/metrics/... ./internal/vtrace/... ./internal/fleet/... ./internal/faults/... ./internal/cloudgen/... ./internal/latprof/... ./internal/telemetry/... ./internal/progress/... ./internal/obshttp/...

# Engine differential suite under the race detector, explicitly and never
# -short: the timing-wheel engine must match the retained heap engine
# (internal/sim/heapengine) event for event on randomized scripts. This is
# the gate that lets the engine be optimized without re-recording goldens.
echo "== engine differential suite (-race)"
go test -race -run 'Differential|WheelCorners|AllocBudget' ./internal/sim/

# Attribution smoke: the attrib experiment must produce byte-identical
# reports across two runs of the same seed — the profiler is a deterministic
# fold over the trace stream, and this catches any hidden-state leak the
# in-package tests might scope too narrowly to see.
echo "== attrib determinism smoke"
go build -o /tmp/vexp_ci ./cmd/experiments
/tmp/vexp_ci -run attrib -scale 0.1 -seed 7 > /tmp/vexp_attrib_a.txt
/tmp/vexp_ci -run attrib -scale 0.1 -seed 7 > /tmp/vexp_attrib_b.txt
cmp /tmp/vexp_attrib_a.txt /tmp/vexp_attrib_b.txt
rm -f /tmp/vexp_ci /tmp/vexp_attrib_a.txt /tmp/vexp_attrib_b.txt

# Examples smoke: every program under examples/ must not just compile but
# run to completion — they are the documented entry points.
echo "== examples smoke"
for d in examples/*/; do
    echo "-- go run ./$d"
    go run "./$d" > /dev/null
done

# Tracing-overhead smoke: the disabled path must stay allocation-free and the
# enabled path cheap. TestEmitAllocatesNothing enforces zero allocs; the
# benchmarks print the per-event cost so regressions are visible in CI logs.
echo "== tracer overhead smoke"
go test -run '^$' -bench 'BenchmarkEmit' -benchtime 1000x ./internal/vtrace/

# Simulator-core benchmark smoke: the -bench core pipeline must run end to
# end and emit a schema-valid artifact (the run re-reads what it wrote and
# fails on schema mismatch). Throwaway output; the recorded baseline is
# BENCH_core.json at the repo root. The self-diff of that artifact must then
# report zero regressions and exit 0, which exercises the -bench diff gate.
echo "== simbench pipeline + diff smoke"
go build -o /tmp/vexp_ci ./cmd/experiments
/tmp/vexp_ci -bench core -smoke -out /tmp/vexp_bench_smoke.json > /dev/null
/tmp/vexp_ci -bench diff /tmp/vexp_bench_smoke.json /tmp/vexp_bench_smoke.json > /dev/null
rm -f /tmp/vexp_bench_smoke.json

# Fleet-scale smoke: the fleetscale experiment at full scale — 1024
# heterogeneous hosts, ~115k VM arrivals (>=100k completed lifetimes), 48
# hours of virtual time — must finish inside the CI budget (the macro
# simulator does the whole thing in seconds) and pass its internal
# serial==sharded snapshot byte-identity gate, which panics on divergence.
echo "== fleetscale determinism smoke (full scale)"
go build -o /tmp/vexp_ci ./cmd/experiments
/tmp/vexp_ci -run fleetscale -seed 42 > /dev/null

# Fleet benchmark pipeline: the -bench fleet smoke must emit a schema-valid
# artifact and self-diff clean (exercising the lifetimes_per_sec metric in
# the diff gate). The committed BENCH_fleet.json baseline must also still
# parse and self-diff clean, so the recorded artifact can't rot silently.
echo "== fleet bench pipeline + diff smoke"
/tmp/vexp_ci -bench fleet -smoke -out /tmp/vexp_fleet_smoke.json > /dev/null
/tmp/vexp_ci -bench diff /tmp/vexp_fleet_smoke.json /tmp/vexp_fleet_smoke.json > /dev/null
/tmp/vexp_ci -bench diff BENCH_fleet.json BENCH_fleet.json > /dev/null
rm -f /tmp/vexp_fleet_smoke.json

# Telemetry byte-identity smoke: the fleetobs experiment panics internally if
# its serial and parallel flight-recorder snapshots diverge; on top of that,
# two full runs of the same seed (with -telemetry sparklines on stdout) must
# be byte-identical.
echo "== fleetobs telemetry determinism smoke"
/tmp/vexp_ci -run fleetobs -scale 0.1 -seed 7 -telemetry > /tmp/vexp_fleetobs_a.txt
/tmp/vexp_ci -run fleetobs -scale 0.1 -seed 7 -telemetry > /tmp/vexp_fleetobs_b.txt
cmp /tmp/vexp_fleetobs_a.txt /tmp/vexp_fleetobs_b.txt
rm -f /tmp/vexp_ci /tmp/vexp_fleetobs_a.txt /tmp/vexp_fleetobs_b.txt

# Fault-tolerance smoke: the faulttol experiment embeds three panic gates
# (serial==sharded snapshot bytes with faults active, recovery strictly
# beating no-recovery on completed lifetimes, exact VM conservation). On top
# of finishing at full scale — 1024 hosts, 48 h, the whole crash/brownout/
# stall schedule — two same-seed runs must be byte-identical.
echo "== faulttol byte-identity smoke (full scale)"
go build -o /tmp/vexp_ci ./cmd/experiments
/tmp/vexp_ci -run faulttol -seed 42 > /tmp/vexp_faulttol_a.txt
/tmp/vexp_ci -run faulttol -seed 42 > /tmp/vexp_faulttol_b.txt
cmp /tmp/vexp_faulttol_a.txt /tmp/vexp_faulttol_b.txt
rm -f /tmp/vexp_ci /tmp/vexp_faulttol_a.txt /tmp/vexp_faulttol_b.txt

# Obsplane smoke: the obsplane experiment boots the embedded observability
# server on an ephemeral port, streams the run's progress events over real
# TCP, and scrapes /metrics concurrently — with five internal panic gates
# (snapshot + telemetry byte-identity attached vs detached, ledger
# conservation on the stream, final-scrape exactness). On top of that, two
# serial runs must be byte-identical: observation is inert by construction.
echo "== obsplane observability determinism smoke"
go build -o /tmp/vexp_ci ./cmd/experiments
/tmp/vexp_ci -run obsplane -scale 0.05 -seed 7 > /tmp/vexp_obsplane_a.txt
/tmp/vexp_ci -run obsplane -scale 0.05 -seed 7 > /tmp/vexp_obsplane_b.txt
cmp /tmp/vexp_obsplane_a.txt /tmp/vexp_obsplane_b.txt
rm -f /tmp/vexp_ci /tmp/vexp_obsplane_a.txt /tmp/vexp_obsplane_b.txt

echo "CI OK"
